open Wfpriv_workflow

type visibility = Public | Private

type wiring = {
  w_id : Ids.module_id;
  w_table : Module_privacy.table;
  w_visibility : visibility;
}

exception Ill_formed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let in_names w = List.map (fun (a : Module_privacy.attr) -> a.Module_privacy.attr_name) (Module_privacy.inputs w.w_table)
let out_names w = List.map (fun (a : Module_privacy.attr) -> a.Module_privacy.attr_name) (Module_privacy.outputs w.w_table)

let all_attrs w = Module_privacy.inputs w.w_table @ Module_privacy.outputs w.w_table

type t = {
  src : (string * Data_value.t list) list;
  modules : wiring list; (* topologically ordered *)
}

let make ~t_sources wirings =
  (* Distinct module ids. *)
  let ids = List.map (fun w -> w.w_id) wirings in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    fail "duplicate module ids";
  (* Single producer per data name. *)
  let producers = Hashtbl.create 16 in
  List.iter
    (fun w ->
      List.iter
        (fun n ->
          if List.mem n t_sources then
            fail "source name %S also produced by a module" n;
          if Hashtbl.mem producers n then fail "data name %S produced twice" n;
          Hashtbl.replace producers n w.w_id)
        (out_names w))
    wirings;
  (* Every input available. *)
  List.iter
    (fun w ->
      List.iter
        (fun n ->
          if (not (List.mem n t_sources)) && not (Hashtbl.mem producers n) then
            fail "input %S of module %s has no producer" n
              (Ids.module_name w.w_id))
        (in_names w))
    wirings;
  (* Domains of shared names agree across tables. *)
  let domain_of = Hashtbl.create 16 in
  List.iter
    (fun w ->
      List.iter
        (fun (a : Module_privacy.attr) ->
          match Hashtbl.find_opt domain_of a.Module_privacy.attr_name with
          | None ->
              Hashtbl.replace domain_of a.Module_privacy.attr_name
                a.Module_privacy.domain
          | Some d ->
              if d <> a.Module_privacy.domain then
                fail "conflicting domains for data name %S"
                  a.Module_privacy.attr_name)
        (all_attrs w))
    wirings;
  (* Source domains must be known (some table consumes them). *)
  let src =
    List.map
      (fun n ->
        match Hashtbl.find_opt domain_of n with
        | Some d -> (n, d)
        | None -> fail "source %S is not consumed by any module" n)
      t_sources
  in
  (* Topological order via Kahn on module dependencies. *)
  let remaining = ref wirings in
  let available = ref t_sources in
  let ordered = ref [] in
  let progress = ref true in
  while !remaining <> [] && !progress do
    progress := false;
    let ready, blocked =
      List.partition
        (fun w -> List.for_all (fun n -> List.mem n !available) (in_names w))
        !remaining
    in
    if ready <> [] then begin
      progress := true;
      ordered := !ordered @ ready;
      available := !available @ List.concat_map out_names ready;
      remaining := blocked
    end
  done;
  if !remaining <> [] then fail "cyclic wiring";
  { src; modules = !ordered }

let of_spec spec semantics ~domains ~private_modules =
  (* Canonical domain order so producer-inferred and consumer-declared
     domains compare equal. *)
  let domains =
    List.map (fun (n, d) -> (n, List.sort_uniq Data_value.compare d)) domains
  in
  let view = View.full spec in
  let atomic =
    List.filter
      (fun m ->
        (Spec.find_module spec m).Module_def.kind = Module_def.Atomic)
      (View.visible_modules view)
  in
  let wirings =
    List.map
      (fun m ->
        {
          w_id = m;
          w_table = Spec_tables.tabulate spec semantics ~domains m;
          w_visibility =
            (if List.mem m private_modules then Private else Public);
        })
      atomic
  in
  let produced = List.concat_map out_names wirings in
  let consumed = List.concat_map in_names wirings in
  let t_sources =
    List.filter (fun n -> not (List.mem n produced)) consumed
    |> List.sort_uniq compare
  in
  make ~t_sources wirings

let sources t = t.src

let data_names t =
  List.map fst t.src @ List.concat_map out_names t.modules
  |> List.sort_uniq compare

(* Evaluate the pipeline on one source assignment, with [apply] giving
   each module's function (row index -> output tuple). *)
let eval t ~apply source_assignment =
  List.fold_left
    (fun env w ->
      let x =
        Array.of_list
          (List.map (fun n -> List.assoc n env) (in_names w))
      in
      let y = apply w x in
      env
      @ List.mapi (fun i n -> (n, y.(i))) (out_names w))
    source_assignment t.modules

let source_product t =
  List.fold_left
    (fun acc (n, domain) ->
      List.concat_map
        (fun partial -> List.map (fun v -> partial @ [ (n, v) ]) domain)
        acc)
    [ [] ] t.src

let true_apply w x = Module_privacy.lookup w.w_table x

let runs t =
  List.map
    (fun src_assign ->
      List.sort compare (eval t ~apply:true_apply src_assign))
    (source_product t)

let output_space w =
  List.fold_left
    (fun acc (a : Module_privacy.attr) ->
      List.concat_map
        (fun tuple -> List.map (fun v -> tuple @ [ v ]) a.Module_privacy.domain)
        acc)
    [ [] ]
    (Module_privacy.outputs w.w_table)
  |> List.map Array.of_list

let saturating_pow base exp =
  let rec go acc = function
    | 0 -> acc
    | e -> if acc > max_int / base then max_int else go (acc * base) (e - 1)
  in
  go 1 exp

let nb_candidate_worlds t =
  List.fold_left
    (fun acc w ->
      match w.w_visibility with
      | Public -> acc
      | Private ->
          let per =
            saturating_pow
              (List.length (output_space w))
              (Module_privacy.nb_rows w.w_table)
          in
          if acc > max_int / max per 1 then max_int else acc * per)
    1 t.modules

(* Row index of an input tuple within a table (product order). *)
let row_index table =
  let rows = Module_privacy.rows table in
  let tbl = Hashtbl.create (List.length rows) in
  List.iteri
    (fun i (x, _) ->
      Hashtbl.replace tbl (List.map Data_value.to_string (Array.to_list x)) i)
    rows;
  fun x ->
    Hashtbl.find tbl (List.map Data_value.to_string (Array.to_list x))

let standalone_gamma t ~hidden =
  List.filter_map
    (fun w ->
      match w.w_visibility with
      | Public -> None
      | Private ->
          let names =
            List.filter
              (fun h -> List.mem h (Module_privacy.attr_names w.w_table))
              hidden
          in
          Some (w.w_id, Module_privacy.privacy_level w.w_table ~hidden:names))
    t.modules

let gamma t ~hidden =
  let names = data_names t in
  List.iter
    (fun h ->
      if not (List.mem h names) then
        invalid_arg (Printf.sprintf "Workflow_privacy.gamma: unknown name %S" h))
    hidden;
  let budget = nb_candidate_worlds t in
  if budget > 1_000_000 then
    invalid_arg
      (Printf.sprintf
         "Workflow_privacy.gamma: %d candidate worlds exceed the exact-search \
          budget"
         budget);
  let privates = List.filter (fun w -> w.w_visibility = Private) t.modules in
  let spaces = List.map (fun w -> Array.of_list (output_space w)) privates in
  let row_counts =
    List.map (fun w -> Module_privacy.nb_rows w.w_table) privates
  in
  let indexers = List.map (fun w -> row_index w.w_table) privates in
  (* World = per private module, an array (row -> output-space index). *)
  let sourcesq = source_product t in
  let visible_of env =
    List.filter (fun (n, _) -> not (List.mem n hidden)) env
    |> List.sort compare
  in
  let observed =
    List.map
      (fun s -> visible_of (eval t ~apply:true_apply s))
      sourcesq
  in
  (* Odometer over all candidate tuples. *)
  let digits =
    List.concat
      (List.mapi
         (fun mi rows -> List.init rows (fun r -> (mi, r)))
         row_counts)
  in
  let bases =
    List.map (fun (mi, _) -> Array.length (List.nth spaces mi)) digits
  in
  let counter = Array.make (List.length digits) 0 in
  let candidate = List.map (fun rows -> Array.make rows 0) row_counts in
  let load_counter () =
    List.iteri
      (fun di (mi, r) -> (List.nth candidate mi).(r) <- counter.(di))
      digits
  in
  (* Output-value collectors: per private module, per row, the set of
     output tuples seen in consistent worlds (keyed by rendering). *)
  let collected =
    List.map (fun rows -> Array.init rows (fun _ -> Hashtbl.create 4)) row_counts
  in
  let apply_world w x =
    match
      List.find_index (fun p -> p.w_id = w.w_id) privates
    with
    | Some mi ->
        let idx = (List.nth indexers mi) x in
        let choice = (List.nth candidate mi).(idx) in
        (List.nth spaces mi).(choice)
    | None -> true_apply w x
  in
  let consistent () =
    List.for_all2
      (fun s obs -> visible_of (eval t ~apply:apply_world s) = obs)
      sourcesq observed
  in
  let record () =
    List.iteri
      (fun mi per_row ->
        Array.iteri
          (fun r h ->
            let choice = (List.nth candidate mi).(r) in
            Hashtbl.replace h choice ())
          per_row)
      collected
  in
  let rec iterate di =
    if di = Array.length counter then begin
      load_counter ();
      if consistent () then record ()
    end
    else
      for v = 0 to List.nth bases di - 1 do
        counter.(di) <- v;
        iterate (di + 1)
      done
  in
  iterate 0;
  List.map2
    (fun w per_row ->
      let g =
        Array.fold_left (fun acc h -> min acc (Hashtbl.length h)) max_int per_row
      in
      (w.w_id, if g = max_int then 1 else g))
    privates collected

let is_safe t ~hidden ~gamma:target =
  List.for_all (fun (_, g) -> g >= target) (gamma t ~hidden)

let optimal_hiding ?(weights = Module_privacy.unit_weights) t ~gamma:target =
  let names = data_names t in
  (* Reuse the best-first enumerator: the first safe subset in cost order
     is the optimum. *)
  Module_privacy.ordered_subset_search ~weights ~names ~safe:(fun hidden ->
      is_safe t ~hidden ~gamma:target)
