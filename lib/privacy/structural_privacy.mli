(** Structural privacy: hiding the fact that one module contributes to the
    output of another (paper, Sec. 3).

    A {e reachability fact} is an ordered pair [(u, v)], [u ≠ v], with a
    path [u ⇝ v]. Hiding the pair means publishing a transformed graph in
    which the fact is no longer derivable. Two mechanisms are analysed:

    - {e Deletion}: remove edges until no [u ⇝ v] path remains. The
      minimum-utility-loss edge set is exactly a minimum s-t cut
      ({!Wfpriv_graph.Mincut}); collateral damage is the set of {e other}
      true facts destroyed (the paper's "hide additional provenance
      information that does not need to be hidden", e.g. losing
      [M12 ⇝ M11] when deleting [M13 → M11]).
    - {e Clustering}: absorb a node set containing [u] and [v] into one
      composite node. Internal facts become invisible, but the quotient
      may imply {e spurious} facts (the paper's [M10 ⇝ M14] example),
      producing an unsound view — quantified here and repaired in
      {!Soundness}.

    All functions expect DAGs (executions/specification views) and treat
    node ids opaquely. *)

type fact = int * int

type deletion_report = {
  cut : (int * int) list;  (** deleted edges *)
  view : Wfpriv_graph.Digraph.t;  (** graph after deletion *)
  base_facts : int;  (** #facts in the original graph *)
  hidden_target : fact;
  collateral : fact list;
      (** true facts other than the target lost by the deletion, sorted *)
}

val hide_by_deletion :
  ?weights:Wfpriv_graph.Mincut.weights ->
  Wfpriv_graph.Digraph.t ->
  fact ->
  deletion_report
(** Raises [Invalid_argument] when the target fact does not hold (nothing
    to hide) or [u = v]. *)

type vertex_deletion_report = {
  removed : int list;  (** deleted modules, sorted *)
  vd_view : Wfpriv_graph.Digraph.t;  (** graph after removal *)
  vd_collateral : fact list;
      (** true facts between surviving nodes that were lost, sorted *)
  facts_about_removed : int;
      (** facts with a deleted endpoint — gone wholesale *)
}

val hide_by_vertex_deletion :
  Wfpriv_graph.Digraph.t -> fact -> vertex_deletion_report option
(** Remove a minimum set of {e modules} so no path connects the pair —
    the paper's "delete edges and vertices" alternative. [None] when a
    direct edge joins the pair (no vertex cut exists). Vertex deletion
    conceals more aggressively than edge deletion: every fact mentioning
    a removed module disappears too, which {!vd_collateral} and
    [facts_about_removed] quantify. Raises like {!hide_by_deletion}. *)

type clustering = int list list
(** Disjoint groups of at least two nodes; ungrouped nodes stay
    singletons. *)

val quotient :
  Wfpriv_graph.Digraph.t -> clustering -> Wfpriv_graph.Digraph.t * (int -> int)
(** Cluster graph and the node→representative mapping (representative =
    least member; singleton nodes map to themselves). Self-edges produced
    by contraction are dropped. Raises [Invalid_argument] on overlapping
    groups, groups of size < 2, or unknown nodes. *)

val convex_closure : Wfpriv_graph.Digraph.t -> int list -> int list
(** Smallest superset of the given nodes closed under betweenness (every
    node on a path between two members joins). Convex clusters keep the
    quotient acyclic. *)

type cluster_report = {
  cluster : int list;
  cluster_view : Wfpriv_graph.Digraph.t;
  cluster_rep : int;
  internal_hidden : fact list;
      (** true facts with both endpoints inside the cluster — these become
          invisible, including the target *)
  spurious : fact list;
      (** facts implied by the view between outside nodes (or an outside
          node and the composite) that are false in the base graph *)
  acyclic : bool;  (** quotient is a DAG (true for convex clusters) *)
}

val hide_by_clustering : Wfpriv_graph.Digraph.t -> fact -> cluster_report
(** Clusters the convex closure of [{u, v}] — the minimal DAG-preserving
    composite hiding the fact. Raises [Invalid_argument] when the fact
    does not hold or [u = v]. *)

val cluster_report : Wfpriv_graph.Digraph.t -> int list -> cluster_report
(** Analyse an arbitrary (validated, size ≥ 2) cluster. *)

val hides : Wfpriv_graph.Digraph.t -> fact -> method_:[ `Deletion | `Clustering ] -> bool
(** Sanity predicate used by tests: does applying the mechanism actually
    conceal the fact? *)
