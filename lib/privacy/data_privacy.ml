open Wfpriv_workflow
module Smap = Map.Make (String)

type t = { levels : Privilege.level Smap.t; default_level : Privilege.level }

let make ?(default_level = 0) assignments =
  if default_level < 0 then invalid_arg "Data_privacy.make: negative level";
  let levels =
    List.fold_left
      (fun acc (name, l) ->
        if l < 0 then invalid_arg "Data_privacy.make: negative level";
        if Smap.mem name acc then
          invalid_arg
            (Printf.sprintf "Data_privacy.make: duplicate name %S" name);
        Smap.add name l acc)
      Smap.empty assignments
  in
  { levels; default_level }

let public = make []

let required_level t name =
  Option.value ~default:t.default_level (Smap.find_opt name t.levels)

let readable t level name = required_level t name <= level

type projection = {
  exec : Execution.t;
  classification : t;
  level : Privilege.level;
}

let project classification level exec = { exec; classification; level }

let value_of p d =
  let item = Execution.find_item p.exec d in
  if readable p.classification p.level item.Execution.name then
    item.Execution.value
  else Data_value.masked

let is_masked p d =
  let item = Execution.find_item p.exec d in
  not (readable p.classification p.level item.Execution.name)

let masked_items p =
  List.filter_map
    (fun (it : Execution.item) ->
      if readable p.classification p.level it.name then None
      else Some it.data_id)
    (Execution.items p.exec)

let visible_ratio p =
  let total = Execution.nb_items p.exec in
  if total = 0 then 1.0
  else
    let masked = List.length (masked_items p) in
    float_of_int (total - masked) /. float_of_int total

let sensitive_names t level =
  Smap.fold
    (fun name l acc -> if l > level then name :: acc else acc)
    t.levels []
  |> List.sort compare
