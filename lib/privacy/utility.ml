module Digraph = Wfpriv_graph.Digraph
module Reachability = Wfpriv_graph.Reachability
open Wfpriv_workflow

type reachability_score = {
  preserved : int;
  lost : int;
  spurious : int;
  precision : float;
  recall : float;
}

let reachability_score ~base ~view ~map =
  let base_closure = Reachability.closure base in
  let view_closure = Reachability.closure view in
  let base_facts = Reachability.closure_facts base_closure in
  let view_facts = Reachability.closure_facts view_closure in
  let preserved, lost =
    List.fold_left
      (fun (p, l) (u, v) ->
        let ru = map u and rv = map v in
        if ru <> rv && Reachability.closure_reaches view_closure ru rv then
          (p + 1, l)
        else (p, l + 1))
      (0, 0) base_facts
  in
  let base_nodes = Digraph.nodes base in
  let preimage r = List.filter (fun n -> map n = r) base_nodes in
  let spurious =
    List.length
      (List.filter
         (fun (a, b) ->
           not
             (List.exists
                (fun x ->
                  List.exists
                    (fun y ->
                      x <> y && Reachability.closure_reaches base_closure x y)
                    (preimage b))
                (preimage a)))
         view_facts)
  in
  let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den in
  let nb_view = List.length view_facts in
  {
    preserved;
    lost;
    spurious;
    precision = ratio (nb_view - spurious) nb_view;
    recall = ratio preserved (List.length base_facts);
  }

let data_utility ~weights exec ~visible =
  List.fold_left
    (fun acc (it : Execution.item) ->
      if visible it.data_id then acc +. weights it.name else acc)
    0.0 (Execution.items exec)

let combined ~alpha ~connectivity ~disclosed_modules ~total_modules =
  if alpha < 0.0 || alpha > 1.0 then invalid_arg "Utility.combined: alpha";
  let f1 =
    let p = connectivity.precision and r = connectivity.recall in
    if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)
  in
  let disclosure =
    if total_modules = 0 then 1.0
    else float_of_int disclosed_modules /. float_of_int total_modules
  in
  (alpha *. f1) +. ((1.0 -. alpha) *. disclosure)
