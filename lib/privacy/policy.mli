(** Privacy policies: one object combining the paper's three concerns and
    compiling, per user level, into the artefacts query evaluation needs
    (paper Sec. 3–4: "privacy guarantees should be integrated in the
    design of the search and query engines").

    A policy over a specification holds:
    - {e structural}: the privilege level required to expand each
      workflow (access views);
    - {e data}: the level required to read each data name;
    - {e module}: a Γ target plus, per private module, the data names
      that must be masked for {e everyone below a stated level} to meet it
      (computed by {!Module_privacy} and stored here).

    {!for_user} compiles the policy into a {!user_view}: the finest
    specification prefix plus the data-name mask set for that level. *)

type t

val make :
  ?expand_levels:(Wfpriv_workflow.Ids.workflow_id * Privilege.level) list ->
  ?data_levels:(string * Privilege.level) list ->
  ?module_masks:(Wfpriv_workflow.Ids.module_id * string list * Privilege.level) list ->
  Wfpriv_workflow.Spec.t ->
  t
(** [module_masks] entries say: to protect this module, these data names
    are masked for users below the given level. Raises [Invalid_argument]
    on unknown ids/levels (validation delegated to {!Privilege.make} /
    {!Data_privacy.make}). *)

val spec : t -> Wfpriv_workflow.Spec.t
val privilege : t -> Privilege.t

val data_classification : t -> Data_privacy.t
(** Effective per-name levels: the max of the declared data level and
    every module-mask level mentioning the name. *)

val effective_data_levels : t -> (string * Privilege.level) list
(** The classification {!data_classification} builds from — declared
    levels merged with module-mask contributions, sorted. The data-name
    universe the policy algebra evaluates over. *)

type user_view = {
  level : Privilege.level;
  view : Wfpriv_workflow.View.t;  (** access view of the specification *)
  masked_names : string list;  (** data names unreadable at this level *)
}

val for_user : t -> Privilege.level -> user_view

val project_execution :
  t -> Privilege.level -> Wfpriv_workflow.Execution.t ->
  Wfpriv_workflow.Exec_view.t * Data_privacy.projection
(** What a user actually sees of an execution: the collapsed graph and
    the masked value accessor. *)

val protected_modules : t -> Wfpriv_workflow.Ids.module_id list
(** Modules with a module-privacy mask, sorted. *)

val expand_levels : t -> (Wfpriv_workflow.Ids.workflow_id * Privilege.level) list
(** Effective (monotone) expansion level per workflow, sorted — feeding
    these back into {!make} reproduces the same policy (serialisation
    hook). *)

val data_levels : t -> (string * Privilege.level) list
(** Declared data-name levels (excluding module-mask contributions),
    sorted. *)

val module_masks :
  t -> (Wfpriv_workflow.Ids.module_id * string list * Privilege.level) list
(** The module-privacy masks as given to {!make}. *)

val audit_level : t -> Privilege.level
(** The highest level mentioned anywhere in the policy — a user at this
    level sees everything. *)
