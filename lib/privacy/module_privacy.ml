open Wfpriv_workflow

type attr = { attr_name : string; domain : Data_value.t list }

let attr name domain =
  if domain = [] then
    invalid_arg (Printf.sprintf "Module_privacy.attr %S: empty domain" name);
  let sorted = List.sort_uniq Data_value.compare domain in
  if List.length sorted <> List.length domain then
    invalid_arg (Printf.sprintf "Module_privacy.attr %S: duplicate values" name);
  { attr_name = name; domain }

let int_attr name k =
  if k <= 0 then invalid_arg "Module_privacy.int_attr: k must be positive";
  attr name (List.init k (fun i -> Data_value.Int i))

type table = {
  module_id : Ids.module_id option;
  t_inputs : attr list;
  t_outputs : attr list;
  t_rows : (Data_value.t array * Data_value.t array) list;
}

(* Cartesian product of the domains, in domain order (first attribute
   slowest). *)
let product attrs =
  List.fold_left
    (fun acc a ->
      List.concat_map (fun tuple -> List.map (fun v -> tuple @ [ v ]) a.domain) acc)
    [ [] ] attrs
  |> List.map Array.of_list

let tuple_compare a b =
  let n = Array.length a and m = Array.length b in
  if n <> m then compare n m
  else begin
    let rec go i =
      if i = n then 0
      else
        let c = Data_value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

module Tuple_map = Map.Make (struct
  type t = Data_value.t array

  let compare = tuple_compare
end)

let check_names inputs outputs =
  let names = List.map (fun a -> a.attr_name) (inputs @ outputs) in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Module_privacy: duplicate attribute names"

let check_in_domain attrs tuple what =
  if Array.length tuple <> List.length attrs then
    invalid_arg (Printf.sprintf "Module_privacy: %s tuple arity mismatch" what);
  List.iteri
    (fun i a ->
      if not (List.exists (Data_value.equal tuple.(i)) a.domain) then
        invalid_arg
          (Printf.sprintf "Module_privacy: %s value %s outside domain of %S"
             what
             (Data_value.to_string tuple.(i))
             a.attr_name))
    attrs

let make_table ?module_id ~inputs ~outputs row_list =
  check_names inputs outputs;
  List.iter
    (fun (x, y) ->
      check_in_domain inputs x "input";
      check_in_domain outputs y "output")
    row_list;
  let by_input =
    List.fold_left
      (fun acc (x, y) ->
        if Tuple_map.mem x acc then
          invalid_arg "Module_privacy.make_table: duplicate input row"
        else Tuple_map.add x y acc)
      Tuple_map.empty row_list
  in
  let full = product inputs in
  List.iter
    (fun x ->
      if not (Tuple_map.mem x by_input) then
        invalid_arg "Module_privacy.make_table: input domain not covered")
    full;
  let t_rows = List.map (fun x -> (x, Tuple_map.find x by_input)) full in
  { module_id; t_inputs = inputs; t_outputs = outputs; t_rows }

let of_function ?module_id ~inputs ~outputs f =
  check_names inputs outputs;
  let rows =
    List.map
      (fun x ->
        let y = f x in
        check_in_domain outputs y "output";
        (x, y))
      (product inputs)
  in
  { module_id; t_inputs = inputs; t_outputs = outputs; t_rows = rows }

let inputs t = t.t_inputs
let outputs t = t.t_outputs
let attr_names t = List.map (fun a -> a.attr_name) (t.t_inputs @ t.t_outputs)
let rows t = t.t_rows
let nb_rows t = List.length t.t_rows

let lookup t x =
  match List.find_opt (fun (x', _) -> tuple_compare x x' = 0) t.t_rows with
  | Some (_, y) -> y
  | None -> raise Not_found

let check_hidden t hidden =
  let names = attr_names t in
  List.iter
    (fun h ->
      if not (List.mem h names) then
        invalid_arg
          (Printf.sprintf "Module_privacy: unknown hidden attribute %S" h))
    hidden

(* Indices of visible positions in a tuple, given attrs and hidden names. *)
let visible_indices attrs hidden =
  List.mapi (fun i a -> (i, a)) attrs
  |> List.filter_map (fun (i, a) ->
         if List.mem a.attr_name hidden then None else Some i)

let project indices tuple = Array.of_list (List.map (fun i -> tuple.(i)) indices)

(* Grouped view of the table under a hidden set:
   vis_in -> set of distinct vis_out values appearing with it. *)
let visible_groups t hidden =
  let vi = visible_indices t.t_inputs hidden in
  let vo = visible_indices t.t_outputs hidden in
  let groups =
    List.fold_left
      (fun acc (x, y) ->
        let kx = project vi x and ky = project vo y in
        let cur = Option.value ~default:[] (Tuple_map.find_opt kx acc) in
        if List.exists (fun k -> tuple_compare k ky = 0) cur then acc
        else Tuple_map.add kx (ky :: cur) acc)
      Tuple_map.empty t.t_rows
  in
  (vi, vo, groups)

let hidden_output_product t hidden =
  List.fold_left
    (fun acc a ->
      if List.mem a.attr_name hidden then acc * List.length a.domain else acc)
    1 t.t_outputs

let candidate_outputs t ~hidden x =
  check_hidden t hidden;
  let vi, _, groups = visible_groups t hidden in
  let kx = project vi x in
  let distinct_vis_outs =
    match Tuple_map.find_opt kx groups with
    | Some l -> List.length l
    | None -> 0
  in
  distinct_vis_outs * hidden_output_product t hidden

let privacy_level t ~hidden =
  check_hidden t hidden;
  let _, _, groups = visible_groups t hidden in
  let h = hidden_output_product t hidden in
  Tuple_map.fold
    (fun _ outs acc -> min acc (List.length outs * h))
    groups max_int

let is_safe t ~hidden ~gamma = privacy_level t ~hidden >= gamma

let max_achievable_gamma t =
  List.fold_left (fun acc a -> acc * List.length a.domain) 1 t.t_outputs

type weights = string -> int

let unit_weights _ = 1

let hiding_cost w names =
  List.fold_left
    (fun acc n ->
      let c = w n in
      if c <= 0 then
        invalid_arg (Printf.sprintf "Module_privacy: non-positive weight for %S" n);
      acc + c)
    0 names

(* Enumerate all subsets of [names] (as sorted lists), calling [safe] on
   each, and return the minimum-cost safe one. *)
let exact_search ~weights ~names ~safe =
  let n = List.length names in
  if n > 20 then
    invalid_arg
      (Printf.sprintf
         "Module_privacy: exact search over %d attributes is infeasible; use \
          the greedy variant"
         n);
  let arr = Array.of_list names in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let subset =
      List.filter_map
        (fun i -> if mask land (1 lsl i) <> 0 then Some arr.(i) else None)
        (List.init n Fun.id)
    in
    if safe subset then begin
      let cost = hiding_cost weights subset in
      let better =
        match !best with
        | None -> true
        | Some (c, s) ->
            cost < c
            || (cost = c && List.length subset < List.length s)
            || (cost = c && List.length subset = List.length s && subset < s)
      in
      if better then best := Some (cost, subset)
    end
  done;
  Option.map snd !best

(* Greedy: repeatedly add the attribute with the best gain/cost ratio on
   log Γ; when stuck (no positive gain), add the cheapest remaining. *)
let greedy_search ~weights ~names ~level ~gamma =
  let rec grow hidden remaining =
    if level hidden >= gamma then Some (List.sort compare hidden)
    else
      match remaining with
      | [] -> None
      | _ ->
          let current = level hidden in
          let scored =
            List.map
              (fun a ->
                let gain =
                  log (float_of_int (level (a :: hidden)))
                  -. log (float_of_int current)
                in
                (a, gain /. float_of_int (weights a)))
              remaining
          in
          let best_positive =
            List.fold_left
              (fun acc (a, r) ->
                match acc with
                | Some (_, r') when r' >= r -> acc
                | _ when r > 0.0 -> Some (a, r)
                | _ -> acc)
              None scored
          in
          let pick =
            match best_positive with
            | Some (a, _) -> a
            | None ->
                (* No single attribute helps yet (correlated hiding):
                   take the cheapest to make progress. *)
                List.fold_left
                  (fun best a ->
                    if (weights a, a) < (weights best, best) then a else best)
                  (List.hd remaining) (List.tl remaining)
          in
          grow (pick :: hidden) (List.filter (fun a -> a <> pick) remaining)
  in
  grow [] names

(* Best-first subset enumeration in nondecreasing total cost via the
   classic extend/replace-last scheme over attributes sorted by weight:
   from subset S with greatest chosen index j, emit S ∪ {j+1} (extend)
   and S \ {j} ∪ {j+1} (replace). Every subset is generated exactly
   once, and a min-heap on cost yields them cheapest-first. *)
module Subset_heap = struct
  type entry = { cost : int; indices : int list (* descending *) }
  type t = { mutable heap : entry array; mutable size : int }

  let create () = { heap = Array.make 64 { cost = 0; indices = [] }; size = 0 }
  let swap h i j =
    let tmp = h.heap.(i) in
    h.heap.(i) <- h.heap.(j);
    h.heap.(j) <- tmp

  let push h e =
    if h.size = Array.length h.heap then begin
      let bigger = Array.make (2 * h.size) e in
      Array.blit h.heap 0 bigger 0 h.size;
      h.heap <- bigger
    end;
    h.heap.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && h.heap.((!i - 1) / 2).cost > h.heap.(!i).cost do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.heap.(0) in
      h.size <- h.size - 1;
      h.heap.(0) <- h.heap.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.heap.(l).cost < h.heap.(!smallest).cost then
          smallest := l;
        if r < h.size && h.heap.(r).cost < h.heap.(!smallest).cost then
          smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

let ordered_search ~weights ~names ~safe =
  let sorted =
    List.sort compare (List.map (fun n -> (weights n, n)) names)
    |> Array.of_list
  in
  let n = Array.length sorted in
  let names_of indices =
    List.map (fun i -> snd sorted.(i)) indices |> List.sort compare
  in
  let heap = Subset_heap.create () in
  Subset_heap.push heap { Subset_heap.cost = 0; indices = [] };
  let rec drain () =
    match Subset_heap.pop heap with
    | None -> None
    | Some { Subset_heap.cost; indices } ->
        if safe (names_of indices) then Some (names_of indices)
        else begin
          (match indices with
          | [] ->
              if n > 0 then
                Subset_heap.push heap
                  { Subset_heap.cost = fst sorted.(0); indices = [ 0 ] }
          | j :: rest ->
              if j + 1 < n then begin
                Subset_heap.push heap
                  {
                    Subset_heap.cost = cost + fst sorted.(j + 1);
                    indices = (j + 1) :: j :: rest;
                  };
                Subset_heap.push heap
                  {
                    Subset_heap.cost = cost - fst sorted.(j) + fst sorted.(j + 1);
                    indices = (j + 1) :: rest;
                  }
              end);
          drain ()
        end
  in
  drain ()

let ordered_subset_search ~weights ~names ~safe =
  List.iter (fun n -> ignore (hiding_cost weights [ n ])) names;
  ordered_search ~weights ~names ~safe

let optimal_hiding_ordered ?(weights = unit_weights) t ~gamma =
  ordered_subset_search ~weights ~names:(attr_names t) ~safe:(fun hidden ->
      is_safe t ~hidden ~gamma)

let optimal_hiding ?(weights = unit_weights) t ~gamma =
  exact_search ~weights ~names:(attr_names t)
    ~safe:(fun hidden -> is_safe t ~hidden ~gamma)

let greedy_hiding ?(weights = unit_weights) t ~gamma =
  greedy_search ~weights ~names:(attr_names t)
    ~level:(fun hidden -> privacy_level t ~hidden)
    ~gamma

type network = {
  tables : (Ids.module_id * table) list;
  shared : (string * Ids.module_id list) list;
}

let make_network tables =
  let shared = Hashtbl.create 16 in
  List.iter
    (fun (m, t) ->
      List.iter
        (fun n ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt shared n) in
          Hashtbl.replace shared n (m :: cur))
        (attr_names t))
    tables;
  let shared =
    Hashtbl.fold (fun n ms acc -> (n, List.sort compare ms) :: acc) shared []
    |> List.sort compare
  in
  { tables; shared }

let network_attr_names net = List.map fst net.shared

let restrict_hidden t hidden =
  List.filter (fun h -> List.mem h (attr_names t)) hidden

let network_privacy_level net ~hidden =
  List.map
    (fun (m, t) -> (m, privacy_level t ~hidden:(restrict_hidden t hidden)))
    net.tables

let network_is_safe net ~hidden ~gamma =
  List.for_all (fun (_, l) -> l >= gamma) (network_privacy_level net ~hidden)

let optimal_network_hiding ?(weights = unit_weights) net ~gamma =
  exact_search ~weights ~names:(network_attr_names net)
    ~safe:(fun hidden -> network_is_safe net ~hidden ~gamma)

let greedy_network_hiding ?(weights = unit_weights) net ~gamma =
  let level hidden =
    List.fold_left
      (fun acc (_, l) -> min acc l)
      max_int
      (network_privacy_level net ~hidden)
  in
  greedy_search ~weights ~names:(network_attr_names net) ~level ~gamma

let pp_table ppf t =
  let names = attr_names t in
  Format.fprintf ppf "@[<v>%s@," (String.concat " | " names);
  List.iter
    (fun (x, y) ->
      let cells =
        Array.to_list (Array.map Data_value.to_string x)
        @ Array.to_list (Array.map Data_value.to_string y)
      in
      Format.fprintf ppf "%s@," (String.concat " | " cells))
    t.t_rows;
  Format.fprintf ppf "@]"
