(** JSON (de)serialisation of workflow specifications.

    The encoding is stable and human-readable:

    {v
    { "root": "W1",
      "modules": [ {"id": 2, "name": "...", "kind": "composite",
                    "expands": "W2", "keywords": ["genetics"]}, ... ],
      "workflows": [ {"id": "W1", "title": "...",
                      "members": [0, 1, 2, 3],
                      "edges": [ {"src": 0, "dst": 2,
                                  "data": ["snps", "ethnicity"]} ]} ] }
    v}

    Decoding re-validates through {!Wfpriv_workflow.Spec.create}, so a
    decoded value satisfies every specification invariant or fails with
    {!Wfpriv_workflow.Spec.Invalid} / [Invalid_argument]. *)

val encode : Wfpriv_workflow.Spec.t -> Json.t
val decode : Json.t -> Wfpriv_workflow.Spec.t

val to_string : ?pretty:bool -> Wfpriv_workflow.Spec.t -> string
val of_string : string -> Wfpriv_workflow.Spec.t
(** Raises {!Json.Parse_error} on malformed JSON and
    {!Wfpriv_workflow.Spec.Invalid} / [Invalid_argument] on invalid
    specifications. *)
