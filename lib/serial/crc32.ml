(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Checksums are kept in a plain OCaml int masked to 32 bits, which avoids
   Int32 boxing on the WAL append hot path. Known vector:
   digest "123456789" = 0xCBF43926. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then (!c lsr 1) lxor 0xEDB88320 else !c lsr 1
         done;
         !c))

(* Composable form: [update crc s pos len] extends a running checksum.
   The initial value is 0 and no final conditioning is left pending, so
   [update (update 0 a) b] = [digest (a ^ b)]. *)
let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update: slice out of bounds";
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFF_FFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFF_FFFF

let digest ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  update 0 s pos len
