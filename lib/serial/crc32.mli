(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven,
    as used to checksum WAL records. Checksums are plain OCaml ints in
    [0, 0xFFFFFFFF]. Known vector: [digest "123456789" = 0xCBF43926]. *)

val digest : ?pos:int -> ?len:int -> string -> int
(** Checksum of a string slice (default: the whole string). *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum, so
    [update (digest a) b 0 (String.length b) = digest (a ^ b)] and the
    initial value is [0]. Raises [Invalid_argument] on an out-of-bounds
    slice. *)
