(** JSON (de)serialisation of privacy policies.

    A policy document embeds its specification:

    {v
    { "spec": { ... Spec_codec ... },
      "expand_levels": [ {"workflow": "W2", "level": 1}, ... ],
      "data_levels": [ {"name": "snps", "level": 1}, ... ],
      "module_masks": [ {"module": 2, "names": ["snps"], "level": 2} ] }
    v}

    Decoding re-validates through {!Wfpriv_privacy.Policy.make}. Encoding
    stores {e effective} expansion levels, which {!Wfpriv_privacy.Policy}
    treats idempotently, so encode/decode round-trips to an equivalent
    policy. *)

val encode : Wfpriv_privacy.Policy.t -> Json.t
val decode : Json.t -> Wfpriv_privacy.Policy.t

val to_string : ?pretty:bool -> Wfpriv_privacy.Policy.t -> string
val of_string : string -> Wfpriv_privacy.Policy.t
