type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Parser: single pass over the string with explicit position. *)

type state = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let error st message = raise (Parse_error { line = st.line; col = st.col; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with
  | Some '\n' ->
      st.line <- st.line + 1;
      st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st (Printf.sprintf "expected %C, found %C" c c')
  | None -> error st (Printf.sprintf "expected %C, found end of input" c)

let expect_keyword st kw value =
  String.iter (fun c -> expect st c) kw;
  value

(* Encode a Unicode code point as UTF-8 into the buffer. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_hex4 st =
  let value = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c when c >= '0' && c <= '9' ->
        value := (!value * 16) + Char.code c - Char.code '0'
    | Some c when c >= 'a' && c <= 'f' ->
        value := (!value * 16) + Char.code c - Char.code 'a' + 10
    | Some c when c >= 'A' && c <= 'F' ->
        value := (!value * 16) + Char.code c - Char.code 'A' + 10
    | _ -> error st "invalid \\u escape");
    advance st
  done;
  !value

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        advance st;
        Buffer.contents buf
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; advance st
        | Some '\\' -> Buffer.add_char buf '\\'; advance st
        | Some '/' -> Buffer.add_char buf '/'; advance st
        | Some 'b' -> Buffer.add_char buf '\b'; advance st
        | Some 'f' -> Buffer.add_char buf '\012'; advance st
        | Some 'n' -> Buffer.add_char buf '\n'; advance st
        | Some 'r' -> Buffer.add_char buf '\r'; advance st
        | Some 't' -> Buffer.add_char buf '\t'; advance st
        | Some 'u' ->
            advance st;
            let cp = parse_hex4 st in
            (* Surrogate pair handling. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              expect st '\\';
              expect st 'u';
              let low = parse_hex4 st in
              if low < 0xDC00 || low > 0xDFFF then
                error st "invalid low surrogate"
              else
                add_utf8 buf
                  (0x10000 + ((cp - 0xD800) lsl 10) + (low - 0xDC00))
            end
            else add_utf8 buf cp
        | _ -> error st "invalid escape sequence");
        go ()
    | Some c when Char.code c < 0x20 -> error st "control character in string"
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ()

let parse_number st =
  let start = st.pos in
  let consume_while pred =
    let rec go () =
      match peek st with Some c when pred c -> advance st; go () | _ -> ()
    in
    go ()
  in
  if peek st = Some '-' then advance st;
  consume_while (fun c -> c >= '0' && c <= '9');
  if peek st = Some '.' then begin
    advance st;
    consume_while (fun c -> c >= '0' && c <= '9')
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (fun c -> c >= '0' && c <= '9')
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> error st (Printf.sprintf "invalid number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some 'n' -> expect_keyword st "null" Null
  | Some 't' -> expect_keyword st "true" (Bool true)
  | Some 'f' -> expect_keyword st "false" (Bool false)
  | Some '"' -> Str (parse_string st)
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              items (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> error st "expected ',' or ']' in array"
        in
        Arr (items [])
      end
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let field () =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              fields (kv :: acc)
          | Some '}' ->
              advance st;
              List.rev (kv :: acc)
          | _ -> error st "expected ',' or '}' in object"
        in
        Obj (fields [])
      end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)
  | None -> error st "unexpected end of input"

let parse src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> error st (Printf.sprintf "trailing garbage starting with %C" c)
  | None -> ());
  v

let parse_result src =
  match parse src with
  | v -> Ok v
  | exception Parse_error { line; col; message } ->
      Error (Printf.sprintf "line %d, column %d: %s" line col message)

(* ------------------------------------------------------------------ *)
(* Printers *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (number_to_string f)
    | Str s ->
        Buffer.add_char buf '"';
        escape_into buf s;
        Buffer.add_char buf '"'
    | Arr items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            go item)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\":";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | (Null | Bool _ | Num _ | Str _) as atom -> Buffer.add_string buf (to_string atom)
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            go (depth + 1) item)
          items;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            indent (depth + 1);
            Buffer.add_char buf '"';
            escape_into buf k;
            Buffer.add_string buf "\": ";
            go (depth + 1) v)
          fields;
        Buffer.add_char buf '\n';
        indent depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Accessors *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let shape_error what v =
  invalid_arg (Printf.sprintf "Json: expected %s, found %s" what (type_name v))

let member key = function
  | Obj fields -> (
      match List.assoc_opt key fields with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Json: missing member %S" key))
  | v -> shape_error "object" v

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | v -> shape_error "object" v

let to_list = function Arr items -> items | v -> shape_error "array" v
let get_string = function Str s -> s | v -> shape_error "string" v

let get_int = function
  | Num f when Float.is_integer f -> int_of_float f
  | v -> shape_error "integer" v

let get_float = function Num f -> f | v -> shape_error "number" v
let get_bool = function Bool b -> b | v -> shape_error "bool" v
let int i = Num (float_of_int i)
let str s = Str s

let equal a b = a = b
