open Wfpriv_privacy

let encode policy =
  Json.Obj
    [
      ("spec", Spec_codec.encode (Policy.spec policy));
      ( "expand_levels",
        Json.Arr
          (List.map
             (fun (w, l) ->
               Json.Obj [ ("workflow", Json.str w); ("level", Json.int l) ])
             (Policy.expand_levels policy)) );
      ( "data_levels",
        Json.Arr
          (List.map
             (fun (n, l) ->
               Json.Obj [ ("name", Json.str n); ("level", Json.int l) ])
             (Policy.data_levels policy)) );
      ( "module_masks",
        Json.Arr
          (List.map
             (fun (m, names, l) ->
               Json.Obj
                 [
                   ("module", Json.int m);
                   ("names", Json.Arr (List.map Json.str names));
                   ("level", Json.int l);
                 ])
             (Policy.module_masks policy)) );
    ]

let decode j =
  let spec = Spec_codec.decode (Json.member "spec" j) in
  let expand_levels =
    List.map
      (fun e ->
        ( Json.get_string (Json.member "workflow" e),
          Json.get_int (Json.member "level" e) ))
      (Json.to_list (Json.member "expand_levels" j))
  in
  let data_levels =
    List.map
      (fun e ->
        ( Json.get_string (Json.member "name" e),
          Json.get_int (Json.member "level" e) ))
      (Json.to_list (Json.member "data_levels" j))
  in
  let module_masks =
    List.map
      (fun e ->
        ( Json.get_int (Json.member "module" e),
          List.map Json.get_string (Json.to_list (Json.member "names" e)),
          Json.get_int (Json.member "level" e) ))
      (Json.to_list (Json.member "module_masks" j))
  in
  Policy.make ~expand_levels ~data_levels ~module_masks spec

let to_string ?(pretty = false) policy =
  let j = encode policy in
  if pretty then Json.to_string_pretty j else Json.to_string j

let of_string s = decode (Json.parse s)
