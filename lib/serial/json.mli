(** Minimal self-contained JSON: value type, strict parser with
    line/column errors, compact and pretty printers, and typed accessors.

    Workflow repositories are shared artefacts (paper Sec. 1); this module
    is the interchange layer used by {!Spec_codec}, {!Exec_codec} and
    {!Policy_codec}. It implements the JSON subset those codecs emit:
    UTF-8 strings with the standard escapes (\uXXXX accepted and decoded
    to UTF-8), IEEE doubles, and no trailing commas or comments. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of { line : int; col : int; message : string }

val parse : string -> t
(** Raises {!Parse_error} on malformed input (including trailing
    garbage). *)

val parse_result : string -> (t, string) result
(** Like {!parse} but returning the rendered error. *)

val to_string : t -> string
(** Compact rendering. Strings are escaped; numbers print as integers
    when integral, shortest-roundtrip otherwise. *)

val to_string_pretty : t -> string
(** Two-space indentation. *)

(** {2 Typed accessors}

    All raise [Invalid_argument] with a descriptive message on shape
    mismatch; [member] raises on missing keys, [member_opt] does not. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_list : t -> t list
val get_string : t -> string
val get_int : t -> int
val get_float : t -> float
val get_bool : t -> bool

val int : int -> t
val str : string -> t

val equal : t -> t -> bool
