(** A small textual language for workflow specifications — the format the
    CLI reads and the docs show. Example (the quickstart pipeline):

    {v
    workflow main "Quickstart pipeline" {
      input;
      output;
      module M1 "Clean samples";
      module M2 "Analyze cohort" expands sub keywords [cohort, analysis];
      I -> M1 [samples];
      M1 -> M2 [cleaned];
      M2 -> O [report];
    }
    workflow sub "Cohort analysis" {
      module M3 "Align reads";
      module M4 "Score variants";
      M3 -> M4 [aligned];
    }
    root main
    v}

    Module references are [I], [O] or [M<n>] (paper numbering); data-name
    lists use identifier syntax [[a, b]], and keyword lists additionally
    accept quoted strings for terms that are not plain identifiers. Comments run from [#] to end of
    line. {!parse} validates through {!Wfpriv_workflow.Spec.create};
    {!print} emits text that {!parse} accepts ({e print ∘ parse} is
    identity up to formatting, property-tested). *)

exception Syntax_error of { line : int; col : int; message : string }

val parse : string -> Wfpriv_workflow.Spec.t
(** Raises {!Syntax_error} on lexical/grammatical errors and
    {!Wfpriv_workflow.Spec.Invalid} on semantic ones. *)

val parse_result : string -> (Wfpriv_workflow.Spec.t, string) result

val print : Wfpriv_workflow.Spec.t -> string
(** Canonical rendering: workflows in id order, modules then edges. *)
