(* Compact binary codec primitives: little-endian fixed-width integers,
   LEB128 varints and length-prefixed strings over a Buffer-backed writer
   and a position-tracking reader. Used by the durable storage engine's
   record format (`lib/durable/wal.ml`); deliberately free of any
   workflow-specific knowledge so other codecs can reuse it. *)

exception Truncated
(** Raised by the reader when the input ends mid-value. *)

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let length = Buffer.length
  let contents = Buffer.contents

  let u8 t v =
    if v < 0 || v > 0xFF then invalid_arg "Binary.Writer.u8: out of range";
    Buffer.add_char t (Char.chr v)

  let u32 t v =
    if v < 0 || v > 0xFFFF_FFFF then invalid_arg "Binary.Writer.u32: out of range";
    Buffer.add_char t (Char.chr (v land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char t (Char.chr ((v lsr 24) land 0xFF))

  (* OCaml ints are 63-bit; the top byte therefore never exceeds 0x7F. *)
  let u64 t v =
    if v < 0 then invalid_arg "Binary.Writer.u64: negative";
    for i = 0 to 7 do
      Buffer.add_char t (Char.chr ((v lsr (8 * i)) land 0xFF))
    done

  let rec varint t v =
    if v < 0 then invalid_arg "Binary.Writer.varint: negative"
    else if v < 0x80 then Buffer.add_char t (Char.chr v)
    else begin
      Buffer.add_char t (Char.chr (0x80 lor (v land 0x7F)));
      varint t (v lsr 7)
    end

  let raw t s = Buffer.add_string t s

  let str t s =
    varint t (String.length s);
    raw t s
end

module Reader = struct
  type t = { src : string; mutable pos : int }

  let of_string ?(pos = 0) src = { src; pos }
  let pos t = t.pos
  let remaining t = String.length t.src - t.pos
  let at_end t = remaining t = 0

  let need t n = if remaining t < n then raise Truncated

  let u8 t =
    need t 1;
    let v = Char.code t.src.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u32 t =
    need t 4;
    let b i = Char.code t.src.[t.pos + i] in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    t.pos <- t.pos + 4;
    v

  let u64 t =
    need t 8;
    let b i = Char.code t.src.[t.pos + i] in
    if b 7 > 0x7F then invalid_arg "Binary.Reader.u64: exceeds OCaml int range";
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor b i
    done;
    t.pos <- t.pos + 8;
    !v

  let varint t =
    let rec go shift acc =
      if shift > 62 then invalid_arg "Binary.Reader.varint: overflow";
      let b = u8 t in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
    in
    go 0 0

  let raw t n =
    if n < 0 then invalid_arg "Binary.Reader.raw: negative length";
    need t n;
    let s = String.sub t.src t.pos n in
    t.pos <- t.pos + n;
    s

  let str t =
    let n = varint t in
    raw t n
end
