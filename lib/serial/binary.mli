(** Compact binary codec primitives: little-endian fixed-width integers,
    LEB128 varints and length-prefixed strings, over a Buffer-backed
    writer and a position-tracking reader. The durable storage engine's
    WAL record format ([lib/durable/wal.ml]) is built on these. *)

exception Truncated
(** Raised by {!Reader} operations when the input ends mid-value. *)

module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val contents : t -> string

  val u8 : t -> int -> unit
  (** Raises [Invalid_argument] outside [0, 0xFF]; same pattern for the
      other fixed-width writers. *)

  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val varint : t -> int -> unit
  (** LEB128; non-negative ints only. *)

  val raw : t -> string -> unit
  val str : t -> string -> unit
  (** Varint byte length, then the bytes. *)
end

module Reader : sig
  type t

  val of_string : ?pos:int -> string -> t
  (** Reads share the underlying string (no copy). *)

  val pos : t -> int
  val remaining : t -> int
  val at_end : t -> bool
  val u8 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val varint : t -> int
  val raw : t -> int -> string
  val str : t -> string
end
