(** JSON (de)serialisation of executions (provenance graphs).

    An execution is stored together with its specification so the decoded
    value is self-contained:

    {v
    { "spec": { ... Spec_codec ... },
      "nodes": [ {"id": 0, "kind": "input", "scope": []},
                 {"id": 2, "kind": "atomic", "proc": 2, "module": 4,
                  "scope": [1]}, ... ],
      "edges": [ {"src": 0, "dst": 1, "items": [0, 1]} ],
      "items": [ {"id": 0, "name": "snps", "value": {...},
                  "producer": 0, "derived_from": []} ] }
    v}

    Values use a tagged encoding ({!encode_value}). Decoding rebuilds the
    execution through {!Wfpriv_workflow.Execution.Builder}, so the result
    passes the same validation as a freshly executed run; node and data
    ids are preserved exactly. *)

val encode_value : Wfpriv_workflow.Data_value.t -> Json.t
val decode_value : Json.t -> Wfpriv_workflow.Data_value.t

val encode : Wfpriv_workflow.Execution.t -> Json.t
val decode : Json.t -> Wfpriv_workflow.Execution.t
(** Raises [Invalid_argument] on ill-formed documents (unknown kinds,
    id mismatches, cyclic graphs). *)

val decode_with_spec : Wfpriv_workflow.Spec.t -> Json.t -> Wfpriv_workflow.Execution.t
(** Like {!decode} but binds the execution to the given (already decoded)
    specification, ignoring any embedded ["spec"] member — used by
    {!Wfpriv_store.Repo_store} (sharing one spec across many runs) and
    whenever physical identity with an existing spec matters. *)

val to_string : ?pretty:bool -> Wfpriv_workflow.Execution.t -> string
val of_string : string -> Wfpriv_workflow.Execution.t
