open Wfpriv_workflow

let encode_module (m : Module_def.t) =
  let kind, expands =
    match m.Module_def.kind with
    | Module_def.Input -> ("input", None)
    | Module_def.Output -> ("output", None)
    | Module_def.Atomic -> ("atomic", None)
    | Module_def.Composite w -> ("composite", Some w)
  in
  Json.Obj
    ([
       ("id", Json.int m.Module_def.id);
       ("name", Json.str m.Module_def.name);
       ("kind", Json.str kind);
     ]
    @ (match expands with Some w -> [ ("expands", Json.str w) ] | None -> [])
    @
    match m.Module_def.keywords with
    | [] -> []
    | kws -> [ ("keywords", Json.Arr (List.map Json.str kws)) ])

let encode_edge (e : Spec.edge) =
  Json.Obj
    [
      ("src", Json.int e.Spec.src);
      ("dst", Json.int e.Spec.dst);
      ("data", Json.Arr (List.map Json.str e.Spec.data));
    ]

let encode_workflow (wf : Spec.workflow) =
  Json.Obj
    [
      ("id", Json.str wf.Spec.wf_id);
      ("title", Json.str wf.Spec.title);
      ("members", Json.Arr (List.map Json.int wf.Spec.members));
      ("edges", Json.Arr (List.map encode_edge wf.Spec.edges));
    ]

let encode spec =
  Json.Obj
    [
      ("root", Json.str (Spec.root spec));
      ( "modules",
        Json.Arr
          (List.map
             (fun m -> encode_module (Spec.find_module spec m))
             (Spec.module_ids spec)) );
      ( "workflows",
        Json.Arr
          (List.map
             (fun w -> encode_workflow (Spec.find_workflow spec w))
             (Spec.workflow_ids spec)) );
    ]

let decode_module j =
  let id = Json.get_int (Json.member "id" j) in
  let name = Json.get_string (Json.member "name" j) in
  let keywords =
    match Json.member_opt "keywords" j with
    | Some kws -> List.map Json.get_string (Json.to_list kws)
    | None -> []
  in
  let kind =
    match Json.get_string (Json.member "kind" j) with
    | "input" -> Module_def.Input
    | "output" -> Module_def.Output
    | "atomic" -> Module_def.Atomic
    | "composite" ->
        Module_def.Composite (Json.get_string (Json.member "expands" j))
    | other -> invalid_arg (Printf.sprintf "Spec_codec: unknown kind %S" other)
  in
  Module_def.make ~keywords ~id ~name kind

let decode_edge j =
  {
    Spec.src = Json.get_int (Json.member "src" j);
    dst = Json.get_int (Json.member "dst" j);
    data = List.map Json.get_string (Json.to_list (Json.member "data" j));
  }

let decode_workflow j =
  {
    Spec.wf_id = Json.get_string (Json.member "id" j);
    title = Json.get_string (Json.member "title" j);
    members = List.map Json.get_int (Json.to_list (Json.member "members" j));
    edges = List.map decode_edge (Json.to_list (Json.member "edges" j));
  }

let decode j =
  let root = Json.get_string (Json.member "root" j) in
  let modules =
    List.map decode_module (Json.to_list (Json.member "modules" j))
  in
  let workflows =
    List.map decode_workflow (Json.to_list (Json.member "workflows" j))
  in
  Spec.create ~root modules workflows

let to_string ?(pretty = false) spec =
  let j = encode spec in
  if pretty then Json.to_string_pretty j else Json.to_string j

let of_string s = decode (Json.parse s)
