open Wfpriv_workflow
module Digraph = Wfpriv_graph.Digraph

let rec encode_value = function
  | Data_value.Unit -> Json.Obj [ ("t", Json.str "unit") ]
  | Data_value.Bool b -> Json.Obj [ ("t", Json.str "bool"); ("v", Json.Bool b) ]
  | Data_value.Int i -> Json.Obj [ ("t", Json.str "int"); ("v", Json.int i) ]
  | Data_value.Str s -> Json.Obj [ ("t", Json.str "str"); ("v", Json.str s) ]
  | Data_value.List xs ->
      Json.Obj [ ("t", Json.str "list"); ("v", Json.Arr (List.map encode_value xs)) ]
  | Data_value.Record fields ->
      Json.Obj
        [
          ("t", Json.str "record");
          ( "v",
            Json.Obj (List.map (fun (k, v) -> (k, encode_value v)) fields) );
        ]

let rec decode_value j =
  match Json.get_string (Json.member "t" j) with
  | "unit" -> Data_value.Unit
  | "bool" -> Data_value.Bool (Json.get_bool (Json.member "v" j))
  | "int" -> Data_value.Int (Json.get_int (Json.member "v" j))
  | "str" -> Data_value.Str (Json.get_string (Json.member "v" j))
  | "list" ->
      Data_value.List (List.map decode_value (Json.to_list (Json.member "v" j)))
  | "record" -> (
      match Json.member "v" j with
      | Json.Obj fields ->
          Data_value.record (List.map (fun (k, v) -> (k, decode_value v)) fields)
      | _ -> invalid_arg "Exec_codec: record value must be an object")
  | other -> invalid_arg (Printf.sprintf "Exec_codec: unknown value tag %S" other)

let encode_node exec n =
  let base =
    [
      ("id", Json.int n);
      ( "scope",
        Json.Arr (List.map Json.int (Execution.scope exec n)) );
    ]
  in
  let rest =
    match Execution.node_kind exec n with
    | Execution.Input -> [ ("kind", Json.str "input") ]
    | Execution.Output -> [ ("kind", Json.str "output") ]
    | Execution.Atomic_exec { proc; module_id } ->
        [
          ("kind", Json.str "atomic");
          ("proc", Json.int proc);
          ("module", Json.int module_id);
        ]
    | Execution.Begin_composite { proc; module_id } ->
        [
          ("kind", Json.str "begin");
          ("proc", Json.int proc);
          ("module", Json.int module_id);
        ]
    | Execution.End_composite { proc; module_id } ->
        [
          ("kind", Json.str "end");
          ("proc", Json.int proc);
          ("module", Json.int module_id);
        ]
  in
  Json.Obj (base @ rest)

let encode exec =
  let g = Execution.graph exec in
  Json.Obj
    [
      ("spec", Spec_codec.encode (Execution.spec exec));
      ("nodes", Json.Arr (List.map (encode_node exec) (Execution.nodes exec)));
      ( "edges",
        Json.Arr
          (List.map
             (fun (u, v) ->
               Json.Obj
                 [
                   ("src", Json.int u);
                   ("dst", Json.int v);
                   ( "items",
                     Json.Arr (List.map Json.int (Execution.edge_items exec u v))
                   );
                 ])
             (Digraph.edges g)) );
      ( "items",
        Json.Arr
          (List.map
             (fun (it : Execution.item) ->
               Json.Obj
                 [
                   ("id", Json.int it.Execution.data_id);
                   ("name", Json.str it.Execution.name);
                   ("value", encode_value it.Execution.value);
                   ("producer", Json.int it.Execution.producer);
                   ( "derived_from",
                     Json.Arr (List.map Json.int it.Execution.derived_from) );
                 ])
             (Execution.items exec)) );
    ]

let decode_kind j =
  let proc () = Json.get_int (Json.member "proc" j) in
  let module_id () = Json.get_int (Json.member "module" j) in
  match Json.get_string (Json.member "kind" j) with
  | "input" -> Execution.Input
  | "output" -> Execution.Output
  | "atomic" -> Execution.Atomic_exec { proc = proc (); module_id = module_id () }
  | "begin" ->
      Execution.Begin_composite { proc = proc (); module_id = module_id () }
  | "end" -> Execution.End_composite { proc = proc (); module_id = module_id () }
  | other -> invalid_arg (Printf.sprintf "Exec_codec: unknown node kind %S" other)

let decode_with_spec spec j =
  let b = Execution.Builder.create spec in
  let nodes = Json.to_list (Json.member "nodes" j) in
  (* Builder assigns node ids sequentially; the encoder emits nodes in id
     order, so feeding them back in document order preserves ids —
     asserted here rather than assumed. *)
  List.iter
    (fun nj ->
      let declared = Json.get_int (Json.member "id" nj) in
      let scope =
        List.map Json.get_int (Json.to_list (Json.member "scope" nj))
      in
      let id = Execution.Builder.add_node b ~scope (decode_kind nj) in
      if id <> declared then
        invalid_arg
          (Printf.sprintf
             "Exec_codec: node ids must be dense and sorted (expected %d, \
              declared %d)"
             id declared))
    nodes;
  List.iter
    (fun ij ->
      let declared = Json.get_int (Json.member "id" ij) in
      let item =
        Execution.Builder.add_item b
          ~name:(Json.get_string (Json.member "name" ij))
          ~value:(decode_value (Json.member "value" ij))
          ~producer:(Json.get_int (Json.member "producer" ij))
          ~derived_from:
            (List.map Json.get_int (Json.to_list (Json.member "derived_from" ij)))
      in
      if item.Execution.data_id <> declared then
        invalid_arg "Exec_codec: item ids must be dense and sorted")
    (Json.to_list (Json.member "items" j));
  List.iter
    (fun ej ->
      Execution.Builder.connect b
        ~src:(Json.get_int (Json.member "src" ej))
        ~dst:(Json.get_int (Json.member "dst" ej))
        (List.map Json.get_int (Json.to_list (Json.member "items" ej))))
    (Json.to_list (Json.member "edges" j));
  Execution.Builder.finish b

let decode j = decode_with_spec (Spec_codec.decode (Json.member "spec" j)) j

let to_string ?(pretty = false) exec =
  let j = encode exec in
  if pretty then Json.to_string_pretty j else Json.to_string j

let of_string s = decode (Json.parse s)
