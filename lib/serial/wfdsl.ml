open Wfpriv_workflow

exception Syntax_error of { line : int; col : int; message : string }

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Ident of string  (** bare identifier, including I / O / M<n> *)
  | String of string
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Arrow
  | Eof

type lexer = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let lex_error lx message =
  raise (Syntax_error { line = lx.line; col = lx.col; message })

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let rec next_token lx =
  match peek_char lx with
  | None -> (Eof, lx.line, lx.col)
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance lx;
      next_token lx
  | Some '#' ->
      let rec skip () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            skip ()
      in
      skip ();
      next_token lx
  | Some c ->
      let line = lx.line and col = lx.col in
      let tok =
        match c with
        | '{' -> advance lx; Lbrace
        | '}' -> advance lx; Rbrace
        | '[' -> advance lx; Lbracket
        | ']' -> advance lx; Rbracket
        | ',' -> advance lx; Comma
        | ';' -> advance lx; Semicolon
        | '-' ->
            advance lx;
            (match peek_char lx with
            | Some '>' ->
                advance lx;
                Arrow
            | _ -> lex_error lx "expected '>' after '-'")
        | '"' ->
            advance lx;
            let buf = Buffer.create 16 in
            let rec str () =
              match peek_char lx with
              | None -> lex_error lx "unterminated string"
              | Some '"' ->
                  advance lx;
                  String (Buffer.contents buf)
              | Some '\\' ->
                  advance lx;
                  (match peek_char lx with
                  | Some '"' -> Buffer.add_char buf '"'; advance lx
                  | Some '\\' -> Buffer.add_char buf '\\'; advance lx
                  | Some 'n' -> Buffer.add_char buf '\n'; advance lx
                  | _ -> lex_error lx "invalid escape in string");
                  str ()
              | Some c ->
                  Buffer.add_char buf c;
                  advance lx;
                  str ()
            in
            str ()
        | c when is_ident_char c ->
            let buf = Buffer.create 8 in
            let rec ident () =
              match peek_char lx with
              | Some c when is_ident_char c ->
                  Buffer.add_char buf c;
                  advance lx;
                  ident ()
              | _ -> Ident (Buffer.contents buf)
            in
            ident ()
        | c -> lex_error lx (Printf.sprintf "unexpected character %C" c)
      in
      (tok, line, col)

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent with one token of lookahead. *)

type parser_state = {
  lx : lexer;
  mutable tok : token;
  mutable tline : int;
  mutable tcol : int;
}

let parse_error ps message =
  raise (Syntax_error { line = ps.tline; col = ps.tcol; message })

let shift ps =
  let tok, line, col = next_token ps.lx in
  ps.tok <- tok;
  ps.tline <- line;
  ps.tcol <- col

let eat ps expected describe =
  if ps.tok = expected then shift ps
  else parse_error ps (Printf.sprintf "expected %s" describe)

let ident ps =
  match ps.tok with
  | Ident s ->
      shift ps;
      s
  | _ -> parse_error ps "expected an identifier"

let module_ref ps name =
  if String.equal name "I" then Ids.input_module
  else if String.equal name "O" then Ids.output_module
  else if
    String.length name >= 2
    && name.[0] = 'M'
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub name 1 (String.length name - 1))
  then Ids.m (int_of_string (String.sub name 1 (String.length name - 1)))
  else parse_error ps (Printf.sprintf "expected a module reference (I, O or M<n>), found %S" name)

let opt_string ps =
  match ps.tok with
  | String s ->
      shift ps;
      s
  | _ -> ""

let ident_or_string ps =
  match ps.tok with
  | String s ->
      shift ps;
      s
  | _ -> ident ps

let ident_list ps =
  eat ps Lbracket "'['";
  let rec items acc =
    let x = ident_or_string ps in
    match ps.tok with
    | Comma ->
        shift ps;
        items (x :: acc)
    | Rbracket ->
        shift ps;
        List.rev (x :: acc)
    | _ -> parse_error ps "expected ',' or ']'"
  in
  items []

type decl =
  | Dinput
  | Doutput
  | Dmodule of Module_def.t
  | Dedge of Spec.edge

let parse_decl ps =
  match ps.tok with
  | Ident "input" ->
      shift ps;
      eat ps Semicolon "';'";
      Dinput
  | Ident "output" ->
      shift ps;
      eat ps Semicolon "';'";
      Doutput
  | Ident "module" ->
      shift ps;
      let id = module_ref ps (ident ps) in
      let name = opt_string ps in
      let expands =
        match ps.tok with
        | Ident "expands" ->
            shift ps;
            Some (ident ps)
        | _ -> None
      in
      let keywords =
        match ps.tok with
        | Ident "keywords" ->
            shift ps;
            ident_list ps
        | _ -> []
      in
      eat ps Semicolon "';'";
      let kind =
        match expands with
        | Some w -> Module_def.Composite w
        | None -> Module_def.Atomic
      in
      Dmodule
        (Module_def.make ~keywords ~id
           ~name:(if name = "" then Ids.module_name id else name)
           kind)
  | Ident other ->
      let src = module_ref ps (ident ps) in
      ignore other;
      eat ps Arrow "'->'";
      let dst = module_ref ps (ident ps) in
      let data = ident_list ps in
      eat ps Semicolon "';'";
      Dedge { Spec.src; dst; data }
  | _ -> parse_error ps "expected a declaration"

let parse_workflow ps =
  eat ps (Ident "workflow") "'workflow'";
  let wf_id = ident ps in
  let title = opt_string ps in
  eat ps Lbrace "'{'";
  let rec decls acc =
    if ps.tok = Rbrace then begin
      shift ps;
      List.rev acc
    end
    else decls (parse_decl ps :: acc)
  in
  let ds = decls [] in
  let members =
    List.filter_map
      (function
        | Dinput -> Some Ids.input_module
        | Doutput -> Some Ids.output_module
        | Dmodule m -> Some m.Module_def.id
        | Dedge _ -> None)
      ds
  in
  let modules =
    List.filter_map (function Dmodule m -> Some m | _ -> None) ds
  in
  let has_input = List.mem Dinput ds and has_output = List.mem Doutput ds in
  let edges = List.filter_map (function Dedge e -> Some e | _ -> None) ds in
  ( { Spec.wf_id; title; members; edges },
    modules,
    (has_input, has_output) )

let parse src =
  let lx = { src; pos = 0; line = 1; col = 1 } in
  let ps = { lx; tok = Eof; tline = 1; tcol = 1 } in
  shift ps;
  let rec workflows acc =
    match ps.tok with
    | Ident "workflow" -> workflows (parse_workflow ps :: acc)
    | _ -> List.rev acc
  in
  let wfs = workflows [] in
  eat ps (Ident "root") "'root'";
  let root = ident ps in
  (match ps.tok with
  | Eof -> ()
  | _ -> parse_error ps "trailing content after 'root'");
  let module_defs = List.concat_map (fun (_, ms, _) -> ms) wfs in
  let io =
    List.concat_map
      (fun (_, _, (has_in, has_out)) ->
        (if has_in then [ Module_def.input ] else [])
        @ if has_out then [ Module_def.output ] else [])
      wfs
  in
  Spec.create ~root (io @ module_defs) (List.map (fun (w, _, _) -> w) wfs)

let parse_result src =
  match parse src with
  | spec -> Ok spec
  | exception Syntax_error { line; col; message } ->
      Error (Printf.sprintf "line %d, column %d: %s" line col message)
  | exception Spec.Invalid message -> Error message

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let print spec =
  let buf = Buffer.create 512 in
  List.iter
    (fun w ->
      let wf = Spec.find_workflow spec w in
      Buffer.add_string buf
        (Printf.sprintf "workflow %s \"%s\" {\n" w (escape wf.Spec.title));
      List.iter
        (fun m ->
          let md = Spec.find_module spec m in
          match md.Module_def.kind with
          | Module_def.Input -> Buffer.add_string buf "  input;\n"
          | Module_def.Output -> Buffer.add_string buf "  output;\n"
          | Module_def.Atomic | Module_def.Composite _ ->
              Buffer.add_string buf
                (Printf.sprintf "  module %s \"%s\"" (Ids.module_name m)
                   (escape md.Module_def.name));
              (match md.Module_def.kind with
              | Module_def.Composite target ->
                  Buffer.add_string buf (Printf.sprintf " expands %s" target)
              | _ -> ());
              (match md.Module_def.keywords with
              | [] -> ()
              | kws ->
                  let ident_safe k =
                    k <> ""
                    && String.for_all
                         (fun c ->
                           (c >= 'a' && c <= 'z')
                           || (c >= 'A' && c <= 'Z')
                           || (c >= '0' && c <= '9')
                           || c = '_' || c = '-')
                         k
                  in
                  let render k =
                    if ident_safe k then k else "\"" ^ escape k ^ "\""
                  in
                  Buffer.add_string buf
                    (Printf.sprintf " keywords [%s]"
                       (String.concat ", " (List.map render kws))));
              Buffer.add_string buf ";\n")
        wf.Spec.members;
      List.iter
        (fun (e : Spec.edge) ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s [%s];\n" (Ids.module_name e.Spec.src)
               (Ids.module_name e.Spec.dst)
               (String.concat ", " e.Spec.data)))
        wf.Spec.edges;
      Buffer.add_string buf "}\n")
    (Spec.workflow_ids spec);
  Buffer.add_string buf (Printf.sprintf "root %s\n" (Spec.root spec));
  Buffer.contents buf
