(** Seeded synthetic workloads: hierarchical specifications, executions,
    module tables and clusterings at controllable scale.

    The paper's repositories (myGrid/Taverna-style collections of
    life-science workflows) are not redistributable; these generators
    produce structurally comparable artefacts — hierarchical DAGs with
    keyword-annotated modules, executable semantics and finite-domain
    module functions — that exercise exactly the same code paths
    (DESIGN.md §2). Everything is deterministic in the generator. *)

type params = {
  levels : int;  (** hierarchy height below the root (0 = flat) *)
  composites_per_workflow : int;
      (** how many modules of each non-leaf workflow are composite *)
  atomics_per_workflow : int;
  edge_probability : float;
      (** probability of a dataflow edge between two order-compatible
          modules of the same workflow *)
  keyword_vocabulary : string list;
  keywords_per_module : int;
}

val default_params : params
(** 2 levels, 2 composites, 4 atomics per workflow, edge probability 0.35,
    a 24-word bioinformatics vocabulary, 2 keywords per module. *)

val spec : Rng.t -> params -> Wfpriv_workflow.Spec.t
(** A valid specification: every workflow a DAG, τ-edges a tree, root
    carrying I/O pseudo-modules. Module count ≈
    [(composites + atomics) * #workflows]. *)

val semantics : Wfpriv_workflow.Spec.t -> Wfpriv_workflow.Executor.semantics
(** Deterministic hash-based semantics for any synthetic spec: module [m]
    outputs, for each of its declared output names, a small [Int] value
    derived from its inputs. *)

val inputs_for : Wfpriv_workflow.Spec.t -> seed:int -> (string * Wfpriv_workflow.Data_value.t) list
(** A valid input assignment for the spec's root — the data names its
    input pseudo-module feeds, values derived from [seed]. Works for any
    spec, not only synthetic ones. *)

val run : Rng.t -> params -> Wfpriv_workflow.Spec.t * Wfpriv_workflow.Execution.t
(** Generate and execute once. *)

val random_table :
  Rng.t ->
  n_inputs:int ->
  n_outputs:int ->
  domain_size:int ->
  Wfpriv_privacy.Module_privacy.table
(** A uniformly random total function over [n_inputs] input attributes
    and [n_outputs] output attributes, all with domain [{0..domain_size-1}]
    (attribute names [x0.. / y0..]). *)

val random_clustering :
  Rng.t ->
  Wfpriv_graph.Digraph.t ->
  nb_clusters:int ->
  cluster_size:int ->
  Wfpriv_privacy.Structural_privacy.clustering
(** Disjoint random groups of the given size (fewer/smaller when the
    graph runs out of nodes); groups of size < 2 are dropped. *)

val random_dag : Rng.t -> nodes:int -> edge_probability:float -> Wfpriv_graph.Digraph.t
(** Random DAG over nodes [0..nodes-1] with edges oriented low → high. *)
