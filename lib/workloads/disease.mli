(** The paper's running example, coded exactly: the personalised disease
    susceptibility workflow of Fig. 1, its expansion hierarchy (Fig. 3),
    and the execution of Fig. 4.

    Module numbering follows the paper ([M1..M15]); the wiring of [W3]
    (under-specified in the figure) is reconstructed from the narrative
    constraints of Sec. 3 — see DESIGN.md §5. The exact figure artefacts
    this module reproduces are checked in the test suite and regenerated
    by bench experiments F1–F4. *)

val spec : Wfpriv_workflow.Spec.t
(** Fig. 1: root [W1] = I → M1 → M2 → O with M1 = W2 = (M3 → M4 = W4) and
    M2 = W3; W4 = M5 → {M6, M7} → M8; W3 = M9 → {M12 → M13 → {M14, M11},
    M10 → M11} → M15. *)

(** Module ids under their paper names. *)

val m1 : Wfpriv_workflow.Ids.module_id
val m2 : Wfpriv_workflow.Ids.module_id
val m3 : Wfpriv_workflow.Ids.module_id
val m4 : Wfpriv_workflow.Ids.module_id
val m5 : Wfpriv_workflow.Ids.module_id
val m6 : Wfpriv_workflow.Ids.module_id
val m7 : Wfpriv_workflow.Ids.module_id
val m8 : Wfpriv_workflow.Ids.module_id
val m9 : Wfpriv_workflow.Ids.module_id
val m10 : Wfpriv_workflow.Ids.module_id
val m11 : Wfpriv_workflow.Ids.module_id
val m12 : Wfpriv_workflow.Ids.module_id
val m13 : Wfpriv_workflow.Ids.module_id
val m14 : Wfpriv_workflow.Ids.module_id
val m15 : Wfpriv_workflow.Ids.module_id

val semantics : Wfpriv_workflow.Executor.semantics
(** Deterministic symbolic semantics for M3, M5–M15: each module builds a
    readable value from its inputs (e.g. M3 maps SNPs [s] to
    [expand(s)]). *)

val priority : Wfpriv_workflow.Ids.module_id -> int
(** Scheduling priority reproducing Fig. 4's process numbering
    [S1..S15]. *)

val default_inputs : (string * Wfpriv_workflow.Data_value.t) list
(** A concrete patient: snps, ethnicity, lifestyle, family history and
    symptoms. *)

val run : unit -> Wfpriv_workflow.Execution.t
(** The execution of Fig. 4 (process ids [S1..S15], data ids [d0..d19]). *)

val run_with :
  (string * Wfpriv_workflow.Data_value.t) list -> Wfpriv_workflow.Execution.t
(** Same spec and scheduling, different patient inputs. *)
