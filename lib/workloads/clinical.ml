open Wfpriv_workflow

let m = Ids.m

let atomic ?keywords id name = Module_def.make ?keywords ~id ~name Module_def.Atomic

let composite ?keywords id name w =
  Module_def.make ?keywords ~id ~name (Module_def.Composite w)

let modules =
  [
    Module_def.input;
    Module_def.output;
    atomic (m 1) "Ingest Patient Records" ~keywords:[ "records"; "intake" ];
    composite (m 2) "De-identify Records" ~keywords:[ "privacy"; "anonymize" ] "C2";
    atomic (m 3) "Assign Cohorts" ~keywords:[ "cohort"; "randomize" ];
    composite (m 4) "Run Trial Analysis" ~keywords:[ "trial"; "statistics" ] "C3";
    atomic (m 5) "Generate Report" ~keywords:[ "report" ];
    atomic (m 6) "Strip Identifiers" ~keywords:[ "identifier" ];
    composite (m 7) "Pseudonymize" ~keywords:[ "pseudonym"; "hash" ] "C4";
    atomic (m 8) "Audit Sample" ~keywords:[ "audit" ];
    atomic (m 9) "Salt and Hash" ~keywords:[ "salt"; "hash" ];
    atomic (m 10) "Validate Pseudonyms" ~keywords:[ "validate" ];
    atomic (m 11) "Split Arms" ~keywords:[ "arm" ];
    atomic (m 12) "Treatment Arm Stats" ~keywords:[ "treatment"; "statistics" ];
    atomic (m 13) "Control Arm Stats" ~keywords:[ "control"; "statistics" ];
    atomic (m 14) "Compare Outcomes" ~keywords:[ "outcome"; "significance" ];
    atomic (m 15) "Power Check" ~keywords:[ "power" ];
  ]

let edge src dst data = { Spec.src; dst; data }

let workflows =
  [
    {
      Spec.wf_id = "C1";
      title = "Clinical trial outcome analysis";
      members = [ Ids.input_module; Ids.output_module; m 1; m 2; m 3; m 4; m 5 ];
      edges =
        [
          edge Ids.input_module (m 1) [ "records"; "consent" ];
          edge (m 1) (m 2) [ "validated_records" ];
          edge (m 2) (m 3) [ "deidentified" ];
          edge (m 3) (m 4) [ "cohorts" ];
          edge (m 4) (m 5) [ "findings" ];
          edge (m 5) Ids.output_module [ "report" ];
        ];
    };
    {
      Spec.wf_id = "C2";
      title = "De-identification";
      members = [ m 6; m 7; m 8 ];
      edges =
        [ edge (m 6) (m 7) [ "stripped" ]; edge (m 7) (m 8) [ "pseudonymized" ] ];
    };
    {
      Spec.wf_id = "C4";
      title = "Pseudonymisation core";
      members = [ m 9; m 10 ];
      edges = [ edge (m 9) (m 10) [ "hashed" ] ];
    };
    {
      Spec.wf_id = "C3";
      title = "Trial analysis";
      members = [ m 11; m 12; m 13; m 14; m 15 ];
      edges =
        [
          edge (m 11) (m 12) [ "treatment_arm" ];
          edge (m 11) (m 13) [ "control_arm" ];
          edge (m 11) (m 15) [ "arm_sizes" ];
          edge (m 12) (m 14) [ "treatment_stats" ];
          edge (m 13) (m 14) [ "control_stats" ];
          edge (m 15) (m 14) [ "power" ];
        ];
    };
  ]

let spec = Spec.create ~root:"C1" modules workflows

let get name inputs =
  match List.assoc_opt name inputs with
  | Some v -> Data_value.to_string v
  | None -> "?"

let semantics mid inputs =
  let s = Printf.sprintf in
  let v x = Data_value.Str x in
  if mid = m 1 then
    [ ("validated_records", v (s "validated(%s)" (get "records" inputs))) ]
  else if mid = m 6 then
    [ ("stripped", v (s "strip(%s)" (get "validated_records" inputs))) ]
  else if mid = m 9 then
    [ ("hashed", v (s "hash(%s)" (get "stripped" inputs))) ]
  else if mid = m 10 then
    [ ("pseudonymized", v (s "validated_pseudo(%s)" (get "hashed" inputs))) ]
  else if mid = m 8 then
    [ ("deidentified", v (s "audited(%s)" (get "pseudonymized" inputs))) ]
  else if mid = m 3 then
    [ ("cohorts", v (s "cohorts(%s)" (get "deidentified" inputs))) ]
  else if mid = m 11 then
    [
      ("treatment_arm", v (s "treat(%s)" (get "cohorts" inputs)));
      ("control_arm", v (s "ctrl(%s)" (get "cohorts" inputs)));
      ("arm_sizes", v (s "sizes(%s)" (get "cohorts" inputs)));
    ]
  else if mid = m 12 then
    [ ("treatment_stats", v (s "tstats(%s)" (get "treatment_arm" inputs))) ]
  else if mid = m 13 then
    [ ("control_stats", v (s "cstats(%s)" (get "control_arm" inputs))) ]
  else if mid = m 15 then
    [ ("power", v (s "power(%s)" (get "arm_sizes" inputs))) ]
  else if mid = m 14 then
    [
      ( "findings",
        v
          (s "compare(%s,%s,%s)"
             (get "treatment_stats" inputs)
             (get "control_stats" inputs)
             (get "power" inputs)) );
    ]
  else if mid = m 5 then
    [ ("report", v (s "report(%s)" (get "findings" inputs))) ]
  else
    raise
      (Executor.Execution_error
         (Printf.sprintf "clinical: no semantics for %s" (Ids.module_name mid)))

let default_inputs =
  [
    ("records", Data_value.Str "cohort-2026-03");
    ("consent", Data_value.Str "signed");
  ]

let run_with inputs = Executor.run spec semantics ~inputs
let run () = run_with default_inputs

let policy =
  Wfpriv_privacy.Policy.make
    ~expand_levels:[ ("C2", 2); ("C4", 3); ("C3", 1) ]
    ~data_levels:
      [ ("records", 2); ("validated_records", 2); ("hashed", 3); ("stripped", 3) ]
    ~module_masks:[ (m 7, [ "stripped"; "pseudonymized" ], 2) ]
    spec
