(** A second hand-built workload: a clinical-trial outcome analysis
    pipeline with a three-deep hierarchy and acutely sensitive
    intermediate data (patient identifiers, per-arm statistics).

    Exists so tests and experiments exercise privacy machinery on a
    hierarchy that differs structurally from the paper's Fig. 1 (deeper
    nesting under the de-identification branch, a diamond inside the
    analysis branch) and so examples have a second searchable repository
    entry. Module numbering continues the paper's convention. *)

val spec : Wfpriv_workflow.Spec.t
(** Root [C1]: I → M1 ingest → M2 de-identify ([C2]) → M3 cohorts →
    M4 analysis ([C3]) → M5 report → O; [C2] = M6 strip → M7
    pseudonymize ([C4]) → M8 audit; [C4] = M9 salt+hash → M10 validate;
    [C3] = M11 split → {M12 treatment, M13 control, M15 power} → M14
    compare. *)

val semantics : Wfpriv_workflow.Executor.semantics
val default_inputs : (string * Wfpriv_workflow.Data_value.t) list

val run : unit -> Wfpriv_workflow.Execution.t
val run_with :
  (string * Wfpriv_workflow.Data_value.t) list -> Wfpriv_workflow.Execution.t

val policy : Wfpriv_privacy.Policy.t
(** A realistic policy: de-identification internals at level 2, its
    pseudonymisation core at level 3, analysis internals at level 1;
    patient records and pseudonym data masked below level 2. *)
