open Wfpriv_workflow
module Digraph = Wfpriv_graph.Digraph

type params = {
  levels : int;
  composites_per_workflow : int;
  atomics_per_workflow : int;
  edge_probability : float;
  keyword_vocabulary : string list;
  keywords_per_module : int;
}

let default_params =
  {
    levels = 2;
    composites_per_workflow = 2;
    atomics_per_workflow = 4;
    edge_probability = 0.35;
    keyword_vocabulary =
      [
        "align"; "blast"; "filter"; "merge"; "annotate"; "cluster"; "sample";
        "normalize"; "genotype"; "phenotype"; "pathway"; "expression";
        "variant"; "sequence"; "assembly"; "ontology"; "cohort"; "imaging";
        "biomarker"; "screening"; "dosage"; "protein"; "transcript"; "assay";
      ];
    keywords_per_module = 2;
  }

(* Intermediate structure before data names are resolved. *)
type proto_workflow = {
  pw_id : Ids.workflow_id;
  pw_members : (Ids.module_id * [ `Atomic | `Composite of Ids.workflow_id ]) list;
      (* in generation (topological) order *)
  pw_edges : (Ids.module_id * Ids.module_id) list;
}

let out_name m = Printf.sprintf "o%d" m

let spec rng params =
  if params.atomics_per_workflow < 1 then
    invalid_arg "Synthetic.spec: need at least one atomic module per workflow";
  let next_module = ref Ids.first_user_id in
  let next_wf = ref 0 in
  let fresh_module () =
    let m = !next_module in
    incr next_module;
    m
  in
  let fresh_wf () =
    let w = Printf.sprintf "V%d" !next_wf in
    incr next_wf;
    w
  in
  let protos = ref [] in
  (* Generate the hierarchy top-down. *)
  let rec gen_workflow depth =
    let wf_id = fresh_wf () in
    let nb_composites = if depth < params.levels then params.composites_per_workflow else 0 in
    let kinds =
      List.init nb_composites (fun _ -> `C)
      @ List.init params.atomics_per_workflow (fun _ -> `A)
    in
    let kinds = Rng.shuffle rng kinds in
    let members =
      List.map
        (fun k ->
          let m = fresh_module () in
          match k with
          | `A -> (m, `Atomic)
          | `C -> (m, `Composite (gen_workflow (depth + 1))))
        kinds
    in
    let ms = List.map fst members in
    (* One bernoulli draw per ordered pair (x, y), x before y in member
       order — the same draw sequence as filtering the materialized pair
       list, without the O(members^2) intermediate allocation. *)
    let edges =
      let arr = Array.of_list ms in
      let n = Array.length arr in
      let acc = ref [] in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if Rng.bernoulli rng params.edge_probability then
            acc := (arr.(i), arr.(j)) :: !acc
        done
      done;
      List.rev !acc
    in
    protos := { pw_id = wf_id; pw_members = members; pw_edges = edges } :: !protos;
    wf_id
  in
  let root = gen_workflow 0 in
  let protos = !protos in
  let proto w = List.find (fun p -> String.equal p.pw_id w) protos in
  (* out_names, bottom-up through the expansion tree (recursion follows
     τ-edges, which form a tree, so it terminates). Memoized per module
     (it is pure in [(m, kind)] — kind is determined by [m]), with a
     hashed per-proto source set: the unmemoized version rescans a
     workflow's whole edge list per member per call, which is what made
     generation cubic at benchmark scale. *)
  let src_sets = Hashtbl.create 16 in
  let srcs_of p =
    match Hashtbl.find_opt src_sets p.pw_id with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 64 in
        List.iter (fun (x, _) -> Hashtbl.replace s x ()) p.pw_edges;
        Hashtbl.add src_sets p.pw_id s;
        s
  in
  let names_memo = Hashtbl.create 64 in
  let rec out_names (m, kind) =
    match Hashtbl.find_opt names_memo m with
    | Some v -> v
    | None ->
        let v =
          match kind with
          | `Atomic -> [ out_name m ]
          | `Composite w ->
              let p = proto w in
              let srcs = srcs_of p in
              List.concat_map
                (fun (x, k) ->
                  if Hashtbl.mem srcs x then [] else out_names (x, k))
                p.pw_members
              |> List.sort_uniq compare
        in
        Hashtbl.add names_memo m v;
        v
  in
  let module_defs =
    List.concat_map
      (fun p ->
        List.map
          (fun (m, kind) ->
            let keywords =
              Rng.sample rng params.keywords_per_module params.keyword_vocabulary
            in
            let name =
              Printf.sprintf "%s step %d"
                (String.capitalize_ascii (Rng.pick rng params.keyword_vocabulary))
                m
            in
            match kind with
            | `Atomic -> Module_def.make ~keywords ~id:m ~name Module_def.Atomic
            | `Composite w ->
                Module_def.make ~keywords ~id:m ~name (Module_def.Composite w))
          p.pw_members)
      protos
  in
  let root_inputs = [ "in0"; "in1"; "in2" ] in
  let workflows =
    List.map
      (fun p ->
        (* Hashed member/endpoint lookups: per-edge [List.assoc] and
           per-member edge scans are quadratic at synthetic-corpus
           scale. Module ids are fresh per member, so [replace] is
           exact. *)
        let kinds = Hashtbl.create 64 in
        List.iter (fun (m, k) -> Hashtbl.replace kinds m k) p.pw_members;
        let kind_of m = Hashtbl.find kinds m in
        let srcs = Hashtbl.create 64 in
        let dsts = Hashtbl.create 64 in
        List.iter
          (fun (s, d) ->
            Hashtbl.replace srcs s ();
            Hashtbl.replace dsts d ())
          p.pw_edges;
        let edges =
          List.map
            (fun (s, d) -> { Spec.src = s; dst = d; data = out_names (s, kind_of s) })
            p.pw_edges
        in
        let is_root = String.equal p.pw_id root in
        if is_root then begin
          let has_in m = Hashtbl.mem dsts m in
          let has_out m = Hashtbl.mem srcs m in
          let entries = List.filter (fun (m, _) -> not (has_in m)) p.pw_members in
          let exits = List.filter (fun (m, _) -> not (has_out m)) p.pw_members in
          let io_edges =
            List.map
              (fun (m, _) ->
                { Spec.src = Ids.input_module; dst = m; data = root_inputs })
              entries
            @ List.map
                (fun (m, k) ->
                  {
                    Spec.src = m;
                    dst = Ids.output_module;
                    data = out_names (m, k);
                  })
                exits
          in
          {
            Spec.wf_id = p.pw_id;
            title = Printf.sprintf "synthetic %s" p.pw_id;
            members =
              Ids.input_module :: Ids.output_module :: List.map fst p.pw_members;
            edges = io_edges @ edges;
          }
        end
        else
          {
            Spec.wf_id = p.pw_id;
            title = Printf.sprintf "synthetic %s" p.pw_id;
            members = List.map fst p.pw_members;
            edges;
          })
      protos
  in
  Spec.create ~root (Module_def.input :: Module_def.output :: module_defs) workflows

let semantics spec : Executor.semantics =
  (* Per-workflow out-edge index and per-module memo tables. The
     executor consults the semantics once per executed module, and
     [outgoing]/[Spec.exits] as per-call scans over the owning
     workflow's full edge (resp. member x edge) lists made execution
     quadratic on large synthetic corpora. [expected] and [natural_out]
     are pure in [m], so memoized values are identical. *)
  let out_index = Hashtbl.create 16 in
  let index_of w =
    match Hashtbl.find_opt out_index w with
    | Some i -> i
    | None ->
        let wf = Spec.find_workflow spec w in
        let idx = Hashtbl.create 64 in
        List.iter
          (fun (e : Spec.edge) ->
            Hashtbl.replace idx e.src
              (Option.value ~default:[] (Hashtbl.find_opt idx e.src) @ e.data))
          wf.Spec.edges;
        (* Same set and order as {!Spec.exits}: members with no outgoing
           edge (an edge with empty [data] still counts). *)
        let exits =
          List.filter (fun m -> not (Hashtbl.mem idx m)) wf.Spec.members
        in
        Hashtbl.add out_index w (idx, exits);
        (idx, exits)
  in
  let outgoing m =
    let idx, _ = index_of (Spec.owner spec m) in
    Option.value ~default:[] (Hashtbl.find_opt idx m) |> List.sort_uniq compare
  in
  let exits w = snd (index_of w) in
  (* Names module [m] contributes under the generator's own convention:
     [o<m>] for an atomic, the union of its inner exits' natural names
     for a composite (mirrors [out_names] in {!spec}). *)
  let nat_memo = Hashtbl.create 64 in
  let rec natural_out m =
    match Hashtbl.find_opt nat_memo m with
    | Some v -> v
    | None ->
        let v =
          match Module_def.expansion (Spec.find_module spec m) with
          | None -> [ out_name m ]
          | Some w -> List.concat_map natural_out (exits w) |> List.sort_uniq compare
        in
        Hashtbl.add nat_memo m v;
        v
  in
  (* The names module [m] must produce. A module with outgoing edges must
     cover their data. An exit of a sub-workflow feeds the enclosing
     composite's boundary: when it is the only exit it must carry
     everything the composite itself is expected to emit (this is what
     makes hand-written hierarchical specs like the disease workflow
     executable under synthetic semantics); with several exits each keeps
     its natural names, the convention the generator builds composite
     edge data from. *)
  let exp_memo = Hashtbl.create 64 in
  let rec expected m =
    match Hashtbl.find_opt exp_memo m with
    | Some v -> v
    | None ->
        let v =
          match outgoing m with
          | [] -> (
              match Spec.defined_by spec (Spec.owner spec m) with
              | Some c when exits (Spec.owner spec m) = [ m ] -> expected c
              | _ -> natural_out m)
          | names -> names
        in
        Hashtbl.add exp_memo m v;
        v
  in
  fun m inputs ->
    List.map
      (fun n -> (n, Data_value.Int (abs (Hashtbl.hash (m, n, inputs)) mod 1000)))
      (expected m)

(* Input names come from the spec's root input edges, so this produces a
   valid assignment for *any* spec (e.g. a stored policy's spec being
   re-executed via `wfpriv repo append`), not only synthetic ones. *)
let inputs_for spec ~seed =
  let wf = Spec.find_workflow spec (Spec.root spec) in
  let names =
    List.concat_map
      (fun (e : Spec.edge) -> if e.src = Ids.input_module then e.data else [])
      wf.Spec.edges
    |> List.sort_uniq compare
  in
  List.mapi
    (fun i n -> (n, Data_value.Int (abs (Hashtbl.hash (seed, i)) mod 1000)))
    names

let run rng params =
  let s = spec rng params in
  let seed = Rng.int rng 1_000_000 in
  (s, Executor.run s (semantics s) ~inputs:(inputs_for s ~seed))

let random_table rng ~n_inputs ~n_outputs ~domain_size =
  let open Wfpriv_privacy.Module_privacy in
  let inputs = List.init n_inputs (fun i -> int_attr (Printf.sprintf "x%d" i) domain_size) in
  let outputs = List.init n_outputs (fun i -> int_attr (Printf.sprintf "y%d" i) domain_size) in
  of_function ~inputs ~outputs (fun _x ->
      Array.init n_outputs (fun _ -> Data_value.Int (Rng.int rng domain_size)))

let random_clustering rng g ~nb_clusters ~cluster_size =
  let nodes = Rng.shuffle rng (Digraph.nodes g) in
  let rec take_groups nodes k acc =
    if k = 0 then acc
    else
      match nodes with
      | [] -> acc
      | _ ->
          let group = List.filteri (fun i _ -> i < cluster_size) nodes in
          let rest = List.filteri (fun i _ -> i >= cluster_size) nodes in
          if List.length group >= 2 then take_groups rest (k - 1) (group :: acc)
          else acc
  in
  take_groups nodes nb_clusters []

let random_dag rng ~nodes ~edge_probability =
  let g = Digraph.create () in
  for i = 0 to nodes - 1 do
    Digraph.add_node g i
  done;
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      if Rng.bernoulli rng edge_probability then Digraph.add_edge g i j
    done
  done;
  g
