(** Deterministic pseudo-random numbers (splitmix64).

    Every randomized component (synthetic workloads, adversary simulation,
    sampled sweeps) takes an explicit generator so experiments and tests
    are exactly reproducible. Not cryptographic. *)

type t

val create : int -> t
(** Seeded generator; equal seeds yield equal streams. *)

val split : t -> t
(** Derive an independent generator (advances the parent). *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound > 0] required. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive; [lo <= hi]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** True with the given probability. *)

val pick : t -> 'a list -> 'a
(** Uniform element; raises [Invalid_argument] on the empty list. *)

val shuffle : t -> 'a list -> 'a list
(** Uniform permutation (Fisher–Yates). *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs]: [k] distinct elements of [xs] in a random order;
    the whole (shuffled) list when [k >= length xs]. *)
