open Wfpriv_workflow

let m1 = Ids.m 1
let m2 = Ids.m 2
let m3 = Ids.m 3
let m4 = Ids.m 4
let m5 = Ids.m 5
let m6 = Ids.m 6
let m7 = Ids.m 7
let m8 = Ids.m 8
let m9 = Ids.m 9
let m10 = Ids.m 10
let m11 = Ids.m 11
let m12 = Ids.m 12
let m13 = Ids.m 13
let m14 = Ids.m 14
let m15 = Ids.m 15

let atomic ?keywords id name = Module_def.make ?keywords ~id ~name Module_def.Atomic

let composite ?keywords id name w =
  Module_def.make ?keywords ~id ~name (Module_def.Composite w)

let modules =
  [
    Module_def.input;
    Module_def.output;
    composite m1 "Determine Genetic Susceptibility"
      ~keywords:[ "genetics"; "susceptibility"; "SNP" ] "W2";
    composite m2 "Evaluate Disorder Risk"
      ~keywords:[ "disorder"; "risk"; "prognosis" ] "W3";
    atomic m3 "Expand SNP Set" ~keywords:[ "SNP" ];
    composite m4 "Consult External Databases" ~keywords:[ "database" ] "W4";
    atomic m5 "Generate Database Queries" ~keywords:[ "database"; "query" ];
    atomic m6 "Query OMIM" ~keywords:[ "OMIM"; "database" ];
    atomic m7 "Query PubMed" ~keywords:[ "PubMed"; "database" ];
    atomic m8 "Combine Disorder Sets" ~keywords:[ "disorder" ];
    atomic m9 "Generate Queries" ~keywords:[ "query" ];
    atomic m10 "Search Private Datasets" ~keywords:[ "private"; "dataset" ];
    atomic m11 "Update Private Datasets" ~keywords:[ "private"; "dataset" ];
    atomic m12 "Search PubMed Central" ~keywords:[ "PubMed"; "article" ];
    atomic m13 "Reformat" ~keywords:[ "format" ];
    atomic m14 "Summarize Articles" ~keywords:[ "summary"; "article" ];
    atomic m15 "Combine notes and summary" ~keywords:[ "notes"; "summary" ];
  ]

let edge src dst data = { Spec.src; dst; data }

let workflows =
  [
    {
      Spec.wf_id = "W1";
      title = "Personalized disease susceptibility";
      members = [ Ids.input_module; Ids.output_module; m1; m2 ];
      edges =
        [
          edge Ids.input_module m1 [ "snps"; "ethnicity" ];
          edge Ids.input_module m2 [ "lifestyle"; "family_history"; "symptoms" ];
          edge m1 m2 [ "disorders" ];
          edge m2 Ids.output_module [ "prognosis" ];
        ];
    };
    {
      Spec.wf_id = "W2";
      title = "Determine genetic susceptibility";
      members = [ m3; m4 ];
      edges = [ edge m3 m4 [ "expanded_snps" ] ];
    };
    {
      Spec.wf_id = "W4";
      title = "Consult external databases";
      members = [ m5; m6; m7; m8 ];
      edges =
        [
          edge m5 m6 [ "omim_query" ];
          edge m5 m7 [ "pubmed_query" ];
          edge m6 m8 [ "omim_disorders" ];
          edge m7 m8 [ "pubmed_disorders" ];
        ];
    };
    {
      Spec.wf_id = "W3";
      title = "Evaluate disorder risk";
      members = [ m9; m10; m11; m12; m13; m14; m15 ];
      edges =
        [
          edge m9 m12 [ "pmc_query" ];
          edge m9 m10 [ "private_query" ];
          edge m12 m13 [ "pmc_results" ];
          edge m13 m14 [ "articles" ];
          edge m13 m11 [ "reformatted" ];
          edge m14 m15 [ "summary" ];
          edge m10 m11 [ "private_results" ];
          edge m11 m15 [ "notes" ];
        ];
    };
  ]

let spec = Spec.create ~root:"W1" modules workflows

let get name inputs =
  match List.assoc_opt name inputs with
  | Some v -> Data_value.to_string v
  | None -> "?"

(* Symbolic semantics: every output is a readable term over the inputs, so
   provenance and privacy examples stay legible. *)
let semantics m inputs =
  let s = Printf.sprintf in
  let v x = Data_value.Str x in
  if m = m3 then [ ("expanded_snps", v (s "expand(%s)" (get "snps" inputs))) ]
  else if m = m5 then
    [
      ("omim_query", v (s "omim?%s" (get "expanded_snps" inputs)));
      ("pubmed_query", v (s "pubmed?%s" (get "expanded_snps" inputs)));
    ]
  else if m = m6 then
    [ ("omim_disorders", v (s "omim_hits(%s)" (get "omim_query" inputs))) ]
  else if m = m7 then
    [ ("pubmed_disorders", v (s "pubmed_hits(%s)" (get "pubmed_query" inputs))) ]
  else if m = m8 then
    [
      ( "disorders",
        v
          (s "combine(%s,%s)"
             (get "omim_disorders" inputs)
             (get "pubmed_disorders" inputs)) );
    ]
  else if m = m9 then
    [
      ("pmc_query", v (s "pmc?%s" (get "disorders" inputs)));
      ( "private_query",
        v
          (s "private?%s;%s;%s;%s" (get "disorders" inputs)
             (get "lifestyle" inputs)
             (get "family_history" inputs)
             (get "symptoms" inputs)) );
    ]
  else if m = m12 then
    [ ("pmc_results", v (s "pmc_hits(%s)" (get "pmc_query" inputs))) ]
  else if m = m13 then
    [
      ("articles", v (s "fmt_articles(%s)" (get "pmc_results" inputs)));
      ("reformatted", v (s "fmt(%s)" (get "pmc_results" inputs)));
    ]
  else if m = m14 then
    [ ("summary", v (s "summarize(%s)" (get "articles" inputs))) ]
  else if m = m10 then
    [
      ( "private_results",
        v (s "private_hits(%s)" (get "private_query" inputs)) );
    ]
  else if m = m11 then
    [
      ( "notes",
        v
          (s "update_db(%s,%s)"
             (get "private_results" inputs)
             (get "reformatted" inputs)) );
    ]
  else if m = m15 then
    [
      ( "prognosis",
        v (s "prognosis(%s,%s)" (get "notes" inputs) (get "summary" inputs)) );
    ]
  else
    raise
      (Executor.Execution_error
         (Printf.sprintf "disease: no semantics for %s" (Ids.module_name m)))

(* Reproduces Fig. 4's S1..S15 numbering: inside W3 the scheduler must run
   M12, M13, M14 before M10, M11. *)
let priority m =
  if m = m9 then 0
  else if m = m12 then 1
  else if m = m13 then 2
  else if m = m14 then 3
  else if m = m10 then 4
  else if m = m11 then 5
  else if m = m15 then 6
  else 0

let default_inputs =
  [
    ("snps", Data_value.Str "rs429358,rs7412");
    ("ethnicity", Data_value.Str "ashkenazi");
    ("lifestyle", Data_value.Str "sedentary");
    ("family_history", Data_value.Str "cardiac");
    ("symptoms", Data_value.Str "fatigue");
  ]

let run_with inputs = Executor.run ~priority spec semantics ~inputs
let run () = run_with default_inputs
