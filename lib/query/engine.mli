(** The compiled query engine: one prepared, dense representation of a
    view that every evaluator executes plans against (paper Sec. 4 —
    efficient search under access views).

    Preparing a view renumbers its nodes into a dense [0..n-1] range and
    builds successor arrays, a module table and an edge-payload table
    once; the transitive closure is computed on first demand as
    {!Wfpriv_graph.Bitset} rows (reverse topological propagation, DFS
    fallback on cycles) and memoized in the prepared value, so repeated
    structural queries against the same view — a session, a cached user
    group — pay for reachability once. Privacy never appears here:
    engines are built from {e views}, which already are the privacy
    boundary ({!Access_gate}). *)

open Wfpriv_workflow

type t
(** A prepared view. Cheap to build (linear in nodes + edges); holds the
    memoized closure. *)

type witness = { holds : bool; nodes : int list }
(** Same contract as {!Query_eval.witness}: nodes involved in making the
    plan true, sorted; empty when [holds = false]. *)

(** {2 Preparation} *)

val of_spec_view : View.t -> t
(** Nodes are visible module ids. *)

val of_exec_view : ?reaches:(int -> int -> bool) -> Exec_view.t -> t
(** Nodes are representative execution node ids. [reaches] overrides the
    reachability oracle (e.g. {!Reach_cache.reaches} partially applied)
    instead of the engine's own closure. *)

val of_execution : Execution.t -> t
(** The raw provenance graph (no collapsing) — candidate enumeration for
    {!Exec_search}. *)

val of_spec : ?reaches:(int -> int -> bool) -> Spec.t -> t
(** The module universe itself: every module of every workflow (composites
    included, unlike any flat view), with each workflow's internal
    dataflow edges. Candidate enumeration for {!Keyword}. [reaches]
    overrides the reachability oracle as in {!of_exec_view} — the hook a
    sharded scatter/gather planner plugs its frontier exchange into. *)

val extend :
  ?carry_names:(int -> int -> string list) ->
  t ->
  nodes:(int * Ids.module_id option) list ->
  edges:(int * int) list ->
  t
(** Incremental preparation for a live view: a new engine over the old
    graph plus the appended [nodes] (fresh external ids, with optional
    modules) and [edges]. Every appended edge must end in an appended
    node — DAG appends only add {e descendants} — so an already-memoized
    closure is maintained incrementally instead of invalidated: old rows
    are widened (they can only gain appended members, never lose any),
    the appended region's rows are filled by a local reverse-topological
    sweep, and one sweep over the old region unions the rows of dirty
    successors — touching only ancestors of an attach point. Answers are
    identical to a from-scratch preparation of the extended graph (the
    differential suite pins rows and witnesses, sequential and
    parallel). Raises [Invalid_argument] on a duplicate node id, an
    unknown edge endpoint, an edge into the frozen region, or an engine
    carrying a [reaches] override (the oracle cannot be extended). *)

(** {2 Prepared-view accessors} *)

val spec : t -> Spec.t
val nb_nodes : t -> int

val nodes : t -> int list
(** External node ids, sorted. *)

val mem : t -> int -> bool

val digest : t -> string
(** Structural digest of the prepared view — nodes, modules, adjacency;
    derived state (the memoized closure) excluded. Two engines prepared
    from equal views digest equally, so a result cache can assert that
    every entry filed under one access-view fingerprint was computed
    against the same graph. *)

val succ : t -> int -> int list
(** Successors of an external node id, sorted; [[]] for unknown nodes. *)

val dense_graph : t -> int array * int array array
(** The prepared view's dense adjacency, [(node_of, succs)]:
    [node_of.(i)] is the external id at dense index [i] (ascending) and
    [succs.(i)] holds successors as dense indices. The arrays are the
    engine's own — callers must not mutate them. Exposed so a sharded
    planner can partition an already-prepared graph without paying a
    second preparation pass. *)

val with_reaches : t -> (int -> int -> bool) -> t
(** A view sharing this engine's prepared graph (nodes, adjacency,
    module index, carries) but answering reachability joins through the
    given oracle over external node ids, with its own unmaterialized
    closure cell. The base engine is unaffected. *)

val module_of : t -> int -> Ids.module_id option

val matching : t -> Query_ast.node_pred -> int list
(** Nodes whose module satisfies the predicate, sorted (nodes with no
    module — execution I/O — match only [Any]). *)

val node_matches : t -> int -> Query_ast.node_pred -> bool

val node_matches_io : t -> int -> Query_ast.node_pred -> bool
(** Like {!node_matches} but I/O nodes additionally answer
    [Module_is Ids.input_module] / [Module_is Ids.output_module] — the
    path-query addressing rule. *)

val reaches : t -> int -> int -> bool
(** Reflexive-transitive reachability from the memoized closure (or the
    override). First call on a prepared view builds the closure. *)

val materialize_closure : ?pool:Wfpriv_parallel.Pool.t -> t -> unit
(** Build and memoize the bitset closure now (no-op when already built).
    With a pool of more than one domain and enough nodes, rows are
    filled stratum-parallel: nodes are grouped by height above the
    sinks, each stratum's rows only union rows of strictly lower strata,
    and each domain owns disjoint row indices — so no locking, and the
    resulting rows are identical to the sequential sweep's. Defaults to
    {!Wfpriv_parallel.Pool.global}, which is sequential unless
    [WFPRIV_JOBS] (or [set_default_jobs]) says otherwise. The memo is
    published once through an [Atomic] under a mutex: concurrent callers
    see either nothing or fully-built rows. *)

val reachable_set : t -> int -> int list
(** External node ids reachable from the given node (itself included),
    ascending; [[]] for unknown nodes. Exposes one closure row — the
    determinism suite compares parallel and sequential rows through
    this. *)

val co_reachable_of_matches : t -> Query_ast.node_pred -> int list
(** Nodes that can reach some match of the predicate (matches included),
    sorted — provenance of a match set, answered from closure rows. *)

(** {2 Plan execution} *)

val run : t -> Plan.t -> witness

val compile : Query_ast.t -> Plan.t
(** {!Plan.compile} timed into the [engine.compile_ns] histogram (a
    plain call when observability is off). *)

val run_query : t -> Query_ast.t -> witness
(** [run t (compile q)]. *)

val run_trace : t -> Plan.t -> witness * (Plan.t * int list) list
(** Like {!run} but also returns every operator's output node set, inner
    operators first — the hook for the leakage test: every intermediate
    node is a node of the prepared view, hence visible. *)

val run_batch : ?pool:Wfpriv_parallel.Pool.t -> t -> Plan.t list -> witness list
(** Evaluate a batch of compiled plans against one prepared view, plans
    distributed across the pool's domains; results in input order,
    identical to [List.map (run t) plans]. Before fanning out, the
    hierarchy and (when some plan contains a [Reach_join]) the closure
    are materialized, after which evaluation only reads the prepared
    view. Engines carrying a [reaches] override evaluate sequentially —
    the override has no thread-safety contract. Defaults to the global
    pool. *)

val run_search :
  lookup:(string list -> Ranking.entry list) -> Plan.search -> Ranking.entry list
(** Execute a search pipeline; [lookup] scores documents for the keyword
    set (the engine owns ranking, quantization and projection). *)

val run_search_indexed :
  index:Index.t ->
  level:Wfpriv_privacy.Privilege.level ->
  Plan.search ->
  Ranking.entry list
(** {!run_search} against a compressed index: the canonical
    [Project_top (k, Rank (Keyword_lookup _))] pipeline dispatches to
    block-max WAND ({!Index.top_k}), everything else (in particular
    quantized pipelines, whose bucketing changes tie behaviour) ranks
    the exhaustive {!Index.score_entries}. Answers are identical either
    way — the WAND differential property pins it. *)

val run_searches :
  ?pool:Wfpriv_parallel.Pool.t ->
  index:Index.t ->
  level:Wfpriv_privacy.Privilege.level ->
  Plan.search list ->
  Ranking.entry list list
(** A batch of search pipelines against one immutable index, distributed
    across the pool's domains; results in input order, identical to
    mapping {!run_search_indexed}. Defaults to the global pool. *)

val run_search_live :
  view:Live_index.view ->
  level:Wfpriv_privacy.Privilege.level ->
  Plan.search ->
  Ranking.entry list
(** {!run_search_indexed} against a pinned LSM view ({!Live_index}):
    the canonical top-k pipeline dispatches to the view's top-k (WAND on
    a single source, merged exhaustive scores otherwise), everything
    else ranks {!Live_index.score_entries}. Answers are identical to
    running against {!Live_index.to_index} of the same view. *)

val run_searches_live :
  ?pool:Wfpriv_parallel.Pool.t ->
  view:Live_index.view ->
  level:Wfpriv_privacy.Privilege.level ->
  Plan.search list ->
  Ranking.entry list list
(** Batched {!run_search_live} over one pinned (hence immutable) view;
    results in input order. Defaults to the global pool. *)
