type node_pred =
  | Any
  | Name_matches of string
  | Module_is of Wfpriv_workflow.Ids.module_id
  | Atomic_only
  | Composite_only

type t =
  | Node of node_pred
  | Edge of node_pred * node_pred
  | Before of node_pred * node_pred
  | Carries of node_pred * node_pred * string
  | Inside of node_pred * Wfpriv_workflow.Ids.workflow_id
  | Refines of node_pred * node_pred
  | And of t * t
  | Or of t * t
  | Not of t

let before_by_name a b = Before (Name_matches a, Name_matches b)

let node_pred_to_string = function
  | Any -> "*"
  | Name_matches s -> Printf.sprintf "~%S" s
  | Module_is m -> Wfpriv_workflow.Ids.module_name m
  | Atomic_only -> "atomic"
  | Composite_only -> "composite"

let rec to_string = function
  | Node p -> Printf.sprintf "node(%s)" (node_pred_to_string p)
  | Edge (a, b) ->
      Printf.sprintf "edge(%s, %s)" (node_pred_to_string a) (node_pred_to_string b)
  | Before (a, b) ->
      Printf.sprintf "before(%s, %s)" (node_pred_to_string a)
        (node_pred_to_string b)
  | Carries (a, b, d) ->
      Printf.sprintf "carries(%s, %s, %S)" (node_pred_to_string a)
        (node_pred_to_string b) d
  | Inside (p, w) -> Printf.sprintf "inside(%s, %s)" (node_pred_to_string p) w
  | Refines (a, b) ->
      Printf.sprintf "refines(%s, %s)" (node_pred_to_string a)
        (node_pred_to_string b)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "not %s" (to_string a)

let rec size = function
  | Node _ | Edge _ | Before _ | Carries _ | Inside _ | Refines _ -> 1
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Not a -> 1 + size a
