open Wfpriv_workflow
open Wfpriv_privacy
module Digraph = Wfpriv_graph.Digraph

type entry_copy = {
  ec_name : string;
  spec_view : View.t;
  spec_engine : Engine.t; (* prepared once per copy; serves search_copy *)
  exec_views : Exec_view.t list;
  visible_item_counts : int list; (* per execution *)
}

type level_copy = { lc_level : Privilege.level; copies : entry_copy list }
type t = { level_copies : level_copy list }

let copy_entry level (e : Repository.entry) =
  let gate = Access_gate.of_policy e.Repository.policy ~level in
  let spec_view = Access_gate.spec_view gate in
  let exec_views =
    List.map (Access_gate.exec_view gate) e.Repository.executions
  in
  {
    ec_name = e.Repository.name;
    spec_view;
    spec_engine = Engine.of_spec_view spec_view;
    exec_views;
    visible_item_counts =
      List.map (fun v -> List.length (Exec_view.visible_items v)) exec_views;
  }

let materialize repo ~levels =
  let levels = List.sort_uniq compare levels in
  if levels = [] then invalid_arg "Materialized.materialize: no levels";
  {
    level_copies =
      List.map
        (fun lc_level ->
          {
            lc_level;
            copies =
              List.map
                (fun name -> copy_entry lc_level (Repository.find repo name))
                (Repository.names repo);
          })
        levels;
  }

let levels t = List.map (fun lc -> lc.lc_level) t.level_copies

let view_space g = Digraph.nb_nodes g + Digraph.nb_edges g

let space t =
  List.fold_left
    (fun acc lc ->
      List.fold_left
        (fun acc ec ->
          let spec_part = view_space (View.graph ec.spec_view) in
          let exec_part =
            List.fold_left2
              (fun acc v items -> acc + view_space (Exec_view.graph v) + items)
              0 ec.exec_views ec.visible_item_counts
          in
          acc + spec_part + exec_part)
        acc lc.copies)
    0 t.level_copies

let integrated_space repo =
  List.fold_left
    (fun acc name ->
      let e = Repository.find repo name in
      let spec_part = view_space (View.graph (View.full e.Repository.spec)) in
      let exec_part =
        List.fold_left
          (fun acc exec ->
            acc
            + view_space (Execution.graph exec)
            + Execution.nb_items exec)
          0 e.Repository.executions
      in
      acc + spec_part + exec_part)
    0 (Repository.names repo)

let entry_consistent level (e : Repository.entry) ec =
  let fresh = copy_entry level e in
  String.equal fresh.ec_name ec.ec_name
  && View.prefix fresh.spec_view = View.prefix ec.spec_view
  && List.length fresh.exec_views = List.length ec.exec_views
  && fresh.visible_item_counts = ec.visible_item_counts

let consistent t repo =
  let names = Repository.names repo in
  List.for_all
    (fun lc ->
      List.length lc.copies = List.length names
      && List.for_all2
           (fun name ec ->
             entry_consistent lc.lc_level (Repository.find repo name) ec)
           names lc.copies)
    t.level_copies

let refresh_entry t repo name =
  let e = Repository.find repo name in
  {
    level_copies =
      List.map
        (fun lc ->
          let fresh = copy_entry lc.lc_level e in
          let replaced = ref false in
          let copies =
            List.map
              (fun ec ->
                if String.equal ec.ec_name name then begin
                  replaced := true;
                  fresh
                end
                else ec)
              lc.copies
          in
          let copies = if !replaced then copies else copies @ [ fresh ] in
          { lc with copies })
        t.level_copies;
  }

let search_copy t ~level term =
  match List.find_opt (fun lc -> lc.lc_level = level) t.level_copies with
  | None -> invalid_arg "Materialized.search_copy: level not materialised"
  | Some lc ->
      List.concat_map
        (fun ec ->
          List.map
            (fun m -> (ec.ec_name, m))
            (Engine.matching ec.spec_engine (Query_ast.Name_matches term)))
        lc.copies
      |> List.sort compare
