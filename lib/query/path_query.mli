(** Regular path queries over views — the BP-QL-style query class the
    paper cites for workflow querying (Beeri et al. [1]): "find paths
    whose module sequence matches a pattern", e.g. {e a SNP expansion,
    then anything not touching private datasets, then a combine step}.

    A pattern is a regular expression whose alphabet is node predicates;
    a path [n0 → n1 → ... → nk] in the view matches when its full node
    sequence spells a word in the pattern's language. Matching compiles
    the pattern to a Thompson NFA and runs the product construction with
    the view's DAG, memoised — polynomial in [nodes × NFA states], no
    path enumeration. *)

type t =
  | Atom of Query_ast.node_pred  (** one node satisfying the predicate *)
  | Seq of t * t
  | Alt of t * t
  | Star of t  (** zero or more *)
  | Eps  (** the empty word *)

val plus : t -> t
(** One or more: [Seq (r, Star r)]. *)

val any : t
(** [Atom Any]. *)

val anything : t
(** [Star any] — matches any (possibly empty) node sequence. *)

val to_string : t -> string
(** [atom . atom], [r | r], [r*], [ε]; parenthesised unambiguously. *)

(** {2 Matching} *)

val matches_spec :
  Wfpriv_workflow.View.t ->
  t ->
  src:Wfpriv_workflow.Ids.module_id ->
  dst:Wfpriv_workflow.Ids.module_id ->
  bool
(** Some dataflow path from [src] to [dst] (inclusive, so a single node
    is the word [[src]] when [src = dst]) matches the pattern. False when
    either endpoint is not visible. *)

val matches_exec : Wfpriv_workflow.Exec_view.t -> t -> src:int -> dst:int -> bool
(** Same over an execution view's nodes. *)

val find_spec :
  Wfpriv_workflow.View.t ->
  t ->
  (Wfpriv_workflow.Ids.module_id * Wfpriv_workflow.Ids.module_id) list
(** All (src, dst) pairs with a matching path, sorted — the pattern's
    answer set on a specification view. *)

val witness_spec :
  Wfpriv_workflow.View.t ->
  t ->
  src:Wfpriv_workflow.Ids.module_id ->
  dst:Wfpriv_workflow.Ids.module_id ->
  Wfpriv_workflow.Ids.module_id list option
(** A concrete matching path (node sequence), if any — found by bounded
    search guided by the product automaton; the path length is bounded by
    [nodes × (NFA states + 1)] so [Star] cannot loop forever. *)
