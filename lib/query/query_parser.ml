exception Syntax_error of { pos : int; message : string }

type state = { src : string; mutable pos : int }

let error st message = raise (Syntax_error { pos = st.pos; message })
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected %C" c)

let is_word_char c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let word st =
  skip_ws st;
  let start = st.pos in
  while (match peek st with Some c when is_word_char c -> true | _ -> false) do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected a word";
  String.sub st.src start (st.pos - start)

(* Words are matched lazily: [try_word] only consumes on full match
   followed by a non-word character. *)
let try_word st w =
  skip_ws st;
  let n = String.length w in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = w
    && (st.pos + n = String.length st.src || not (is_word_char st.src.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let string_lit st =
  skip_ws st;
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' ->
        st.pos <- st.pos + 1;
        Buffer.contents buf
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            st.pos <- st.pos + 1
        | _ -> error st "invalid escape");
        go ()
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ()

let pred st =
  skip_ws st;
  match peek st with
  | Some '*' ->
      st.pos <- st.pos + 1;
      Query_ast.Any
  | Some '~' ->
      st.pos <- st.pos + 1;
      Query_ast.Name_matches (string_lit st)
  | _ ->
      let w = word st in
      if String.equal w "atomic" then Query_ast.Atomic_only
      else if String.equal w "composite" then Query_ast.Composite_only
      else if String.equal w "I" then
        Query_ast.Module_is Wfpriv_workflow.Ids.input_module
      else if String.equal w "O" then
        Query_ast.Module_is Wfpriv_workflow.Ids.output_module
      else if
        String.length w >= 2
        && w.[0] = 'M'
        && String.for_all
             (fun c -> c >= '0' && c <= '9')
             (String.sub w 1 (String.length w - 1))
      then
        Query_ast.Module_is
          (Wfpriv_workflow.Ids.m (int_of_string (String.sub w 1 (String.length w - 1))))
      else error st (Printf.sprintf "unknown predicate %S" w)

let rec parse_or st =
  let left = parse_and st in
  if try_word st "or" then Query_ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_unary st in
  if try_word st "and" then Query_ast.And (left, parse_and st) else left

and parse_unary st =
  if try_word st "not" then Query_ast.Not (parse_unary st)
  else parse_primary st

and parse_primary st =
  skip_ws st;
  match peek st with
  | Some '(' ->
      st.pos <- st.pos + 1;
      let q = parse_or st in
      expect st ')';
      q
  | _ ->
      let w = word st in
      let unary name build =
        ignore name;
        expect st '(';
        let p = pred st in
        expect st ')';
        build p
      in
      let binary build =
        expect st '(';
        let a = pred st in
        expect st ',';
        let b = pred st in
        expect st ')';
        build a b
      in
      if String.equal w "node" then unary w (fun p -> Query_ast.Node p)
      else if String.equal w "edge" then binary (fun a b -> Query_ast.Edge (a, b))
      else if String.equal w "before" then
        binary (fun a b -> Query_ast.Before (a, b))
      else if String.equal w "refines" then
        binary (fun a b -> Query_ast.Refines (a, b))
      else if String.equal w "inside" then begin
        expect st '(';
        let p = pred st in
        expect st ',';
        let wf = word st in
        expect st ')';
        Query_ast.Inside (p, wf)
      end
      else if String.equal w "carries" then begin
        expect st '(';
        let a = pred st in
        expect st ',';
        let b = pred st in
        expect st ',';
        let d = string_lit st in
        expect st ')';
        Query_ast.Carries (a, b, d)
      end
      else error st (Printf.sprintf "unknown query form %S" w)

let parse src =
  let st = { src; pos = 0 } in
  let q = parse_or st in
  skip_ws st;
  (match peek st with
  | Some c -> error st (Printf.sprintf "trailing input at %C" c)
  | None -> ());
  q

let parse_result src =
  match parse src with
  | q -> Ok q
  | exception Syntax_error { pos; message } ->
      Error (Printf.sprintf "at offset %d: %s" pos message)
