type t =
  | Atom of Query_ast.node_pred
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Eps

let plus r = Seq (r, Star r)
let any = Atom Query_ast.Any
let anything = Star any

let rec to_string = function
  | Atom p -> Query_ast.node_pred_to_string p
  | Seq (a, b) -> Printf.sprintf "(%s . %s)" (to_string a) (to_string b)
  | Alt (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Star a -> Printf.sprintf "%s*" (to_string a)
  | Eps -> "ε"

(* ------------------------------------------------------------------ *)
(* Thompson construction *)

type nfa = {
  nb_states : int;
  start : int;
  accept : int;
  eps : (int, int list) Hashtbl.t;
  sym : (int, (Query_ast.node_pred * int) list) Hashtbl.t;
}

let compile pattern =
  let counter = ref 0 in
  let fresh () =
    let s = !counter in
    incr counter;
    s
  in
  let eps = Hashtbl.create 16 and sym = Hashtbl.create 16 in
  let add_eps a b =
    Hashtbl.replace eps a (b :: Option.value ~default:[] (Hashtbl.find_opt eps a))
  in
  let add_sym a p b =
    Hashtbl.replace sym a
      ((p, b) :: Option.value ~default:[] (Hashtbl.find_opt sym a))
  in
  let rec build = function
    | Atom p ->
        let s = fresh () and a = fresh () in
        add_sym s p a;
        (s, a)
    | Eps ->
        let s = fresh () in
        (s, s)
    | Seq (x, y) ->
        let sx, ax = build x in
        let sy, ay = build y in
        add_eps ax sy;
        (sx, ay)
    | Alt (x, y) ->
        let s = fresh () and a = fresh () in
        let sx, ax = build x in
        let sy, ay = build y in
        add_eps s sx;
        add_eps s sy;
        add_eps ax a;
        add_eps ay a;
        (s, a)
    | Star x ->
        let s = fresh () and a = fresh () in
        let sx, ax = build x in
        add_eps s sx;
        add_eps s a;
        add_eps ax sx;
        add_eps ax a;
        (s, a)
  in
  let start, accept = build pattern in
  { nb_states = !counter; start; accept; eps; sym }

let closure nfa states =
  let seen = Hashtbl.create 8 in
  let rec go s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      List.iter go (Option.value ~default:[] (Hashtbl.find_opt nfa.eps s))
    end
  in
  List.iter go states;
  Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Product walk over an abstract graph *)

type 'node walker = {
  succ : 'node -> 'node list;
  satisfies : 'node -> Query_ast.node_pred -> bool;
}

let consume nfa walker states node =
  List.concat_map
    (fun s ->
      List.filter_map
        (fun (p, target) ->
          if walker.satisfies node p then Some target else None)
        (Option.value ~default:[] (Hashtbl.find_opt nfa.sym s)))
    states
  |> fun moved -> closure nfa moved

let matches_walk nfa walker ~src ~dst =
  let init = consume nfa walker (closure nfa [ nfa.start ]) src in
  if init = [] then false
  else begin
    let memo = Hashtbl.create 64 in
    let rec go node states =
      states <> []
      &&
      let key = (node, states) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
          Hashtbl.replace memo key false (* cycle cut *)
          ;
          let here = node = dst && List.mem nfa.accept states in
          let r =
            here
            || List.exists
                 (fun next -> go next (consume nfa walker states next))
                 (walker.succ node)
          in
          Hashtbl.replace memo key r;
          r
    in
    go src init
  end

let witness_walk nfa walker ~src ~dst ~bound =
  let init = consume nfa walker (closure nfa [ nfa.start ]) src in
  let rec go node states path depth =
    if states = [] || depth > bound then None
    else if node = dst && List.mem nfa.accept states then
      Some (List.rev (node :: path))
    else
      List.fold_left
        (fun acc next ->
          match acc with
          | Some _ -> acc
          | None ->
              go next (consume nfa walker states next) (node :: path) (depth + 1))
        None (walker.succ node)
  in
  go src init [] 0

(* ------------------------------------------------------------------ *)
(* Spec and execution instantiations — both walkers run over a prepared
   engine; [node_matches_io] gives I/O nodes the reserved-id addressing
   ([Module_is Ids.input_module] / [output_module]) on execution views
   and is the plain module predicate elsewhere. *)

let engine_walker eng =
  {
    succ = (fun n -> Engine.succ eng n);
    satisfies = (fun n p -> Engine.node_matches_io eng n p);
  }

let matches_spec view pattern ~src ~dst =
  let eng = Engine.of_spec_view view in
  Engine.mem eng src && Engine.mem eng dst
  && matches_walk (compile pattern) (engine_walker eng) ~src ~dst

let matches_exec ev pattern ~src ~dst =
  let eng = Engine.of_exec_view ev in
  Engine.mem eng src && Engine.mem eng dst
  && matches_walk (compile pattern) (engine_walker eng) ~src ~dst

let find_spec view pattern =
  let nfa = compile pattern in
  let eng = Engine.of_spec_view view in
  let walker = engine_walker eng in
  let nodes = Engine.nodes eng in
  List.concat_map
    (fun src ->
      List.filter_map
        (fun dst -> if matches_walk nfa walker ~src ~dst then Some (src, dst) else None)
        nodes)
    nodes
  |> List.sort compare

let witness_spec view pattern ~src ~dst =
  let eng = Engine.of_spec_view view in
  if not (Engine.mem eng src && Engine.mem eng dst) then None
  else begin
    let nfa = compile pattern in
    let bound = Engine.nb_nodes eng * (nfa.nb_states + 1) in
    witness_walk nfa (engine_walker eng) ~src ~dst ~bound
  end
