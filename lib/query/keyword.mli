(** Keyword search over hierarchical workflows (paper Sec. 4, Fig. 5;
    semantics reconstructed from Liu, Shao, Chen, PVLDB 2010).

    The answer to a keyword set over one specification is a {e view}: the
    query matches when every keyword matches some module, and the answer
    view expands exactly enough composites to make a witnessing match of
    each keyword visible. A visible composite module can itself witness a
    keyword without being expanded (the paper's Fig. 5 keeps
    [M2 "Evaluate Disorder Risk"] collapsed while it witnesses "disorder
    risk").

    Two answer strategies are provided:
    - [`Minimal] — the fewest-expansion view: choose one witness per
      keyword minimising the number of expanded workflows (exact
      set-cover search when the candidate product is small, greedy
      otherwise), tie-broken by fewer visible modules;
    - [`Specific] — the finest-granularity answer: witness each keyword
      by its {e deepest} matches in the hierarchy and expand their whole
      ancestor chains. This reproduces the paper's Fig. 5, which exposes
      [M5 "Generate Database Queries"] inside [W4] rather than answering
      with the shallower composite [M4 "Consult External Databases"]. *)

type match_info = {
  keyword : string;
  witnesses : Wfpriv_workflow.Ids.module_id list;  (** chosen, sorted *)
  all_matches : Wfpriv_workflow.Ids.module_id list;  (** every matching module *)
}

type answer = {
  view : Wfpriv_workflow.View.t;
  matches : match_info list;  (** one per keyword, query order *)
}

val search :
  ?strategy:[ `Minimal | `Specific ] ->
  ?restrict_to:(Wfpriv_workflow.Ids.module_id -> bool) ->
  Wfpriv_workflow.Spec.t ->
  string list ->
  answer option
(** [None] when some keyword matches no (admissible) module. Keywords
    match via {!Wfpriv_workflow.Module_def.matches} (case-insensitive
    substring of name or keyword list). [restrict_to] filters admissible
    witness modules — the privacy hook: pass the user's visibility
    predicate so hidden modules can neither witness nor be exposed.
    Default strategy: [`Minimal]. Raises [Invalid_argument] on an empty
    keyword list. *)

val answer_modules : answer -> Wfpriv_workflow.Ids.module_id list
(** Visible modules of the answer view, sorted. *)
