(** LSM view of the privacy-partitioned keyword index: sealed immutable
    segments (the PR 5 delta-block format {e is} the segment format)
    plus an in-memory memtable of recent entries, so a live repository
    can absorb appends without rebuilding the index per write.

    The mutable {!t} is single-writer: [add] appends to the memtable and
    seals it into a segment at the threshold; [maintain] performs one
    merge step (the two oldest segments rebuild into one) whenever the
    segment count exceeds the fanout. Readers never touch {!t} — they
    pin an immutable {!view} ({!snapshot}), which stays valid and
    unchanged whatever the writer does next; this is the epoch/snapshot
    isolation contract of the live repository.

    Query results over a view are {e bit-identical} to a frozen
    {!Index.build} of the same entries: entry doc sets are disjoint
    across sources, so document count and per-term document frequency
    are sums of per-source values; term weights are computed once from
    those global statistics ({!Index.query_terms} order,
    {!Tfidf.idf_for}); each source then scores exhaustively with the
    shared weights ({!Index.score_entries_weighted} — same integer
    frequency sums, same float operations per doc) and the per-source
    lists, each ascending by doc name, interleave into exactly the
    frozen index's doc order. Top-k over that equals the frozen
    block-max WAND answer by the PR 5 differential invariant. The
    differential suite pins all of this against {!to_index}. *)

type entry =
  string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t
(** Same triple as {!Index.build} consumes: entry name, spec, and its
    expansion-level assignment. *)

type t
(** The mutable LSM: memtable + sealed segments. Single-writer; not for
    concurrent mutation. *)

type view
(** An immutable snapshot of the LSM at one instant — the index a pinned
    generation queries. Safe to share across domains. *)

val create : ?seal_threshold:int -> ?fanout:int -> unit -> t
(** Empty LSM. [seal_threshold] (default 8) is the memtable size that
    forces a seal; [fanout] (default 4) the sealed-segment count above
    which merges are pending. Raises [Invalid_argument] when
    [seal_threshold < 1] or [fanout < 2]. *)

val of_entries :
  ?pool:Wfpriv_parallel.Pool.t ->
  ?seal_threshold:int ->
  ?fanout:int ->
  entry list ->
  t
(** Bulk load by streaming every entry through {!add} — the segment
    shape is the one a live process reaching the same stream position
    would have, so offline status reports are deterministic. *)

val add : ?pool:Wfpriv_parallel.Pool.t -> t -> entry -> unit
(** Append one entry to the memtable, sealing at the threshold. Raises
    [Invalid_argument] on a duplicate entry name. The pool (defaulting
    inside {!Index.build} to the global pool) parallelises the seal's
    segment build. *)

val seal : ?pool:Wfpriv_parallel.Pool.t -> t -> unit
(** Force the memtable into a sealed segment now; no-op when empty. *)

val erase : ?pool:Wfpriv_parallel.Pool.t -> t -> string -> bool
(** Remove an entry from the LSM: drop it from the memtable and rewrite
    the sealed segment holding it from its surviving source entries (an
    emptied segment disappears). Because segments rebuild rather than
    tombstone, the erased name is absent from the posting bytes
    themselves. Returns [false] when the name is unknown. Views pinned
    before the erase are untouched — pinned readers keep pre-erasure
    answers until they re-pin, per the epoch contract. *)

val maintain : ?pool:Wfpriv_parallel.Pool.t -> t -> bool
(** One background-merge step: when merges are pending, rebuild the two
    oldest segments into one (entry stream order preserved) and return
    [true]. Merges change only the segment shape, never any query
    answer, and write nothing durable — a crash mid-merge loses
    nothing. *)

val segments : t -> int
(** Sealed-segment count. *)

val memtable_size : t -> int
(** Entries currently in the unsealed memtable. *)

val pending_merges : t -> int
(** How many merge steps {!maintain} would still perform:
    [max 0 (segments - fanout)]. *)

val snapshot : ?pool:Wfpriv_parallel.Pool.t -> t -> view
(** Pin the current state. Builds a small index over the memtable (at
    most [seal_threshold] entries) so the view is self-contained and
    read-only; cached until the next mutation. *)

(** {2 View-side queries}

    Mirrors of the {!Index} read API, answered across all sources of the
    pinned view. [level] partitioning is unchanged: every per-source
    read decodes only partitions [<= level]. *)

val entries : view -> entry list
(** The view's entries in insertion order (merge history invisible). *)

val nb_sources : view -> int
(** Sealed segments plus the memtable index if non-empty. *)

val doc_count : view -> int

val df : view -> level:Wfpriv_privacy.Privilege.level -> string -> int
val idf : view -> level:Wfpriv_privacy.Privilege.level -> string -> float

val score_entries :
  view ->
  level:Wfpriv_privacy.Privilege.level ->
  string list ->
  Ranking.entry list
(** Exhaustive scoring, bit-identical to {!Index.score_entries} on
    {!to_index} of the same view. *)

val top_k :
  view ->
  level:Wfpriv_privacy.Privilege.level ->
  k:int ->
  string list ->
  Ranking.entry list
(** Identical to {!Index.top_k} on {!to_index}: the single-source case
    runs block-max WAND directly; the multi-source case ranks the merged
    exhaustive scores (same floats by construction). *)

val lookup :
  view -> level:Wfpriv_privacy.Privilege.level -> string -> Index.posting list
(** Merged per-source lookups, sorted by (doc, module) like the frozen
    lookup. *)

val matching_docs :
  view -> level:Wfpriv_privacy.Privilege.level -> string list -> string list
(** Docs containing every term at the level, ascending. An entry's
    modules live wholly in one source, so the per-source conjunctive
    intersections merge losslessly. *)

val to_index : ?pool:Wfpriv_parallel.Pool.t -> view -> Index.t
(** The frozen rebuild of the view — the differential reference. *)
