(** Interactive navigation sessions: the zoom-in/zoom-out browsing UX the
    paper's repositories imply, with access control enforced at every
    step rather than once per query.

    A session pins a user (privilege level) to one stored execution and
    tracks the prefix they are currently looking at. Zooming into a
    composite asks {!Wfpriv_privacy.Privilege.can_expand} first; denied
    zooms are recorded (an audit trail of attempted over-reach). The
    current view never exceeds the user's access view — an invariant the
    test suite checks after arbitrary navigation sequences. *)

type t

type zoom_result =
  | Ok of Wfpriv_workflow.Exec_view.t
  | Denied of Wfpriv_privacy.Privilege.level
      (** the level the expansion would require *)
  | Not_expandable  (** unknown node / not a collapsed composite *)

val start :
  Wfpriv_privacy.Privilege.t ->
  level:Wfpriv_privacy.Privilege.level ->
  Wfpriv_workflow.Execution.t ->
  t
(** Begins at the coarsest view (prefix = root only). *)

val start_gated : Access_gate.t -> Wfpriv_workflow.Execution.t -> t
(** Same, reusing a caller-held gate. *)

val current : t -> Wfpriv_workflow.Exec_view.t
val gate : t -> Access_gate.t
val level : t -> Wfpriv_privacy.Privilege.level

val generation : t -> int
(** The epoch the session's gate is pinned to ({!Access_gate.generation});
    0 for frozen repositories. *)

val shards : t -> int
(** The shard topology the session's gate is pinned to
    ({!Access_gate.shards}); 1 for unsharded stores. *)

val prefix : t -> Wfpriv_workflow.Ids.workflow_id list

val engine : t -> Engine.t
(** The prepared engine for the current view, built on first use and
    kept until the next zoom — the "closure built once per session"
    contract: repeated structural queries at one zoom level share one
    preparation and one memoized bitset closure. *)

val query : t -> Query_ast.t -> Query_eval.witness
(** Evaluate against the current view through {!engine}. *)

val query_batch :
  ?pool:Wfpriv_parallel.Pool.t ->
  t ->
  Query_ast.t list ->
  Query_eval.witness list
(** Evaluate a batch of queries against the current view, compiled once
    and distributed across the pool's domains ({!Engine.run_batch});
    answers in input order, identical to mapping {!query}. The session's
    gate and the view's closure are frozen before the fan-out, so the
    batch shares one prepared, read-only view. Defaults to the global
    pool — sequential unless [WFPRIV_JOBS] / [--jobs] raised it. *)

val search :
  ?strategy:[ `Minimal | `Specific ] ->
  t ->
  string list ->
  Keyword.answer option
(** Keyword search over the session's specification: witnesses are
    restricted to modules visible at the session's level, the answer
    view is capped at the access view, and the read is audited
    ([gate.search]) with a visible-node count only. *)

val zoom_in : t -> int -> zoom_result
(** Expand the collapsed composite shown as the given view node; on [Ok]
    the session has moved to the finer view. *)

val zoom_out : t -> Wfpriv_workflow.Ids.workflow_id -> zoom_result
(** Collapse a non-root workflow of the current prefix (and its
    descendants). *)

val zoom_to_access_view : t -> Wfpriv_workflow.Exec_view.t
(** Jump straight to the finest permitted view. *)

val fingerprint : t -> string
(** {!Access_gate.fingerprint} of the session's gate extended with the
    current prefix: two sessions with equal fingerprints are looking at
    the same view with the same rights, so results computed for one may
    be served to the other — the serving layer's cache-key contract. *)

val denied_attempts : t -> (int * Wfpriv_privacy.Privilege.level) list
(** Audit trail: view nodes whose expansion was refused, with the level
    each would need; chronological. *)

val within_access_view : t -> bool
(** Invariant: the current prefix is contained in the access prefix. *)
