(* The query evaluator as it existed before the compiled engine: a
   closure-record interface over the view, list scans, DFS reachability
   per pair. Kept as the differential-testing and benchmarking baseline;
   do not "optimize" — its value is being the old semantics. *)

open Wfpriv_workflow
module Reachability = Wfpriv_graph.Reachability
module Digraph = Wfpriv_graph.Digraph

type witness = { holds : bool; nodes : int list }

let module_pred spec pred m =
  let md = Spec.find_module spec m in
  match pred with
  | Query_ast.Any -> true
  | Query_ast.Name_matches s -> Module_def.matches md s
  | Query_ast.Module_is m' -> m = m'
  | Query_ast.Atomic_only -> md.Module_def.kind = Module_def.Atomic
  | Query_ast.Composite_only -> Module_def.is_composite md

type 'node graph_api = {
  all_nodes : unit -> 'node list;
  module_of : 'node -> Ids.module_id option;
  succ : 'node -> 'node list;
  reaches : 'node -> 'node -> bool;
  edge_carries : 'node -> 'node -> string -> bool;
  the_spec : Spec.t;
}

let api_matching api pred =
  List.filter
    (fun n ->
      match api.module_of n with
      | Some m -> module_pred api.the_spec pred m
      | None -> pred = Query_ast.Any)
    (api.all_nodes ())

let rec eval api q =
  match q with
  | Query_ast.Node p ->
      let ns = api_matching api p in
      { holds = ns <> []; nodes = ns }
  | Query_ast.Edge (pa, pb) ->
      let asrc = api_matching api pa in
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                match api.module_of b with
                | Some m when module_pred api.the_spec pb m -> Some (a, b)
                | Some _ -> None
                | None -> if pb = Query_ast.Any then Some (a, b) else None)
              (api.succ a))
          asrc
      in
      {
        holds = pairs <> [];
        nodes =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs);
      }
  | Query_ast.Before (pa, pb) ->
      let asrc = api_matching api pa and bdst = api_matching api pb in
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if a <> b && api.reaches a b then Some (a, b) else None)
              bdst)
          asrc
      in
      {
        holds = pairs <> [];
        nodes =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs);
      }
  | Query_ast.Carries (pa, pb, data) ->
      let asrc = api_matching api pa in
      let pairs =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                let ok_b =
                  match api.module_of b with
                  | Some m -> module_pred api.the_spec pb m
                  | None -> pb = Query_ast.Any
                in
                if ok_b && api.edge_carries a b data then Some (a, b) else None)
              (api.succ a))
          asrc
      in
      {
        holds = pairs <> [];
        nodes =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs);
      }
  | Query_ast.Inside (p, w) ->
      let inside =
        match Hierarchy.descendants (Hierarchy.of_spec api.the_spec) w with
        | desc ->
            List.filter
              (fun n ->
                match api.module_of n with
                | Some m -> List.mem (Spec.owner api.the_spec m) desc
                | None -> false)
              (api_matching api p)
        | exception Not_found -> []
      in
      { holds = inside <> []; nodes = inside }
  | Query_ast.Refines (pa, pb) ->
      let hierarchy = Hierarchy.of_spec api.the_spec in
      let asrc =
        List.filter
          (fun n ->
            match api.module_of n with
            | Some m -> Module_def.is_composite (Spec.find_module api.the_spec m)
            | None -> false)
          (api_matching api pa)
      in
      let pairs =
        List.concat_map
          (fun a ->
            let w =
              match api.module_of a with
              | Some m -> Module_def.expansion (Spec.find_module api.the_spec m)
              | None -> None
            in
            match w with
            | None -> []
            | Some w ->
                let desc = Hierarchy.descendants hierarchy w in
                List.filter_map
                  (fun b ->
                    match api.module_of b with
                    | Some m
                      when module_pred api.the_spec pb m
                           && List.mem (Spec.owner api.the_spec m) desc ->
                        Some (a, b)
                    | _ -> None)
                  (api.all_nodes ()))
          asrc
      in
      {
        holds = pairs <> [];
        nodes =
          List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs);
      }
  | Query_ast.And (a, b) ->
      let wa = eval api a in
      if not wa.holds then { holds = false; nodes = [] }
      else begin
        let wb = eval api b in
        if wb.holds then
          { holds = true; nodes = List.sort_uniq compare (wa.nodes @ wb.nodes) }
        else { holds = false; nodes = [] }
      end
  | Query_ast.Or (a, b) ->
      let wa = eval api a in
      if wa.holds then wa else eval api b
  | Query_ast.Not a ->
      let wa = eval api a in
      { holds = not wa.holds; nodes = [] }

let spec_api view =
  let g = View.graph view in
  {
    all_nodes = (fun () -> Digraph.nodes g);
    module_of = (fun m -> Some m);
    succ = (fun m -> Digraph.succ g m);
    reaches = (fun a b -> Reachability.reaches g a b);
    edge_carries = (fun a b d -> List.mem d (View.edge_data view a b));
    the_spec = View.spec view;
  }

let spec_nodes_matching view pred = api_matching (spec_api view) pred
let eval_spec view q = eval (spec_api view) q

let exec_api ev =
  let g = Exec_view.graph ev in
  let e = Exec_view.exec ev in
  let item_names u v =
    Exec_view.edge_items ev u v
    |> List.map (fun d -> (Execution.find_item e d).Execution.name)
  in
  {
    all_nodes = (fun () -> Digraph.nodes g);
    module_of = (fun n -> Exec_view.module_of_node ev n);
    succ = (fun n -> Digraph.succ g n);
    reaches = (fun a b -> Reachability.reaches g a b);
    edge_carries = (fun a b d -> List.mem d (item_names a b));
    the_spec = Execution.spec e;
  }

let exec_nodes_matching ev pred = api_matching (exec_api ev) pred
let eval_exec ev q = eval (exec_api ev) q

let provenance_of_matches ev pred =
  let g = Exec_view.graph ev in
  let matches = exec_nodes_matching ev pred in
  List.concat_map (fun n -> Reachability.co_reachable g n) matches
  |> List.sort_uniq compare
