(** Delta-compressed posting blocks: the storage layer under {!Index}.

    One value holds one (term, privilege-level) partition as LEB128
    varint blocks over {!Wfpriv_serial.Binary}. Entries are (doc id,
    module id, term frequency) triples sorted by (doc, module); each
    entry encodes as [doc gap, module, tf - 1]. Blocks target
    {!block_target} entries but never split a document across blocks, so
    a cursor can aggregate a document's frequency without decoding the
    next block. Per block the directory keeps a skip pointer (last doc
    id) and a block-max frequency; both are readable without decoding —
    the hooks for galloping seeks and block-max pruning.

    Leakage discipline: a partition is built from the postings of its
    own level only, so every number a cursor can surface (docs, gaps,
    skip pointers, block maxima, decode/skip counts) is a pure function
    of that level's postings. Cursors record the [index.blocks_decoded]
    / [index.blocks_skipped] counters at the {e caller's} level, which
    an observer at level [p] may see: a caller at level [l <= p] only
    ever opens cursors on partitions at levels [<= l]. *)

type t

val level : t -> Wfpriv_privacy.Privilege.level
val entries : t -> int
(** Distinct (doc, module) pairs. *)

val postings : t -> int
(** Sum of frequencies — the boxed representation's posting count. *)

val docs : t -> int
(** Distinct documents. *)

val max_tf : t -> int
(** Largest {e aggregated per-document} frequency (a document's tf
    summed over its modules) — a sound score bound for any document. *)

val blocks : t -> int
val bytes : t -> int
(** Encoded payload bytes (block directory excluded). *)

val block_target : int

val encode :
  level:Wfpriv_privacy.Privilege.level -> (int * int * int) list -> t
(** [(doc, module, tf)] triples, strictly increasing by (doc, module),
    every [tf >= 1] and ids non-negative; raises [Invalid_argument]
    otherwise. *)

val iter : at:Wfpriv_privacy.Privilege.level -> t -> (int -> int -> int -> unit) -> unit
(** Full decode in storage order, counting every block as decoded at the
    caller's level. *)

(** {2 Streaming cursor} *)

type cursor
(** Positioned on one document at a time; frequencies are aggregated
    over the document's modules. *)

val cursor : at:Wfpriv_privacy.Privilege.level -> t -> cursor

val cur : cursor -> int
(** Current doc id, decoding its block on first touch; [max_int] when
    exhausted. *)

val tf : cursor -> int
(** Aggregated frequency of {!cur} (0 when exhausted). *)

val next : cursor -> unit
(** Advance past the current document. *)

val seek : cursor -> int -> unit
(** Advance to the first doc [>= target]. Whole blocks whose skip
    pointer falls short are skipped undecoded. *)

val lower_bound : cursor -> int
(** A lower bound on {!cur} that never decodes: exact once the current
    block is decoded, otherwise the previous block's skip pointer + 1. *)

val block_last : cursor -> int
(** Skip pointer of the block {!lower_bound} points into; [max_int] when
    exhausted. Never decodes. *)

val block_max_tf : cursor -> int
(** Block-max aggregated per-document frequency of that same block; 0
    when exhausted. Never decodes. *)

val global_max_tf : cursor -> int
(** The underlying partition's {!max_tf} (position-independent). *)
