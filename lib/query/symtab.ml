type t = { names : string array; ids : (string, int) Hashtbl.t }

let of_sorted names =
  let arr = Array.of_list names in
  Array.iteri
    (fun i n ->
      if i > 0 && String.compare arr.(i - 1) n >= 0 then
        invalid_arg "Symtab.of_sorted: input not strictly increasing")
    arr;
  let ids = Hashtbl.create (max 16 (Array.length arr)) in
  Array.iteri (fun i n -> Hashtbl.replace ids n i) arr;
  { names = arr; ids }

let find_opt t name = Hashtbl.find_opt t.ids name

let name t id =
  if id < 0 || id >= Array.length t.names then
    invalid_arg "Symtab.name: unknown id"
  else t.names.(id)

let size t = Array.length t.names
