(** The single privilege gate of the query stack.

    Every evaluator used to re-derive visibility from {!Wfpriv_privacy}
    ad hoc — rebuilding hierarchies, recomputing access prefixes and
    re-asking [min_level_to_see] per module per query. A gate
    materializes one user's visibility once (allowed prefix, hierarchy,
    memoized module floors, data classification) and answers every
    visibility question the engine and its callers have during
    evaluation. By construction it is the {e only} module of the query
    layer consulting [Privilege]/[Policy]/[Data_privacy] — the audit
    surface for "does evaluation leak?" is exactly this file. *)

open Wfpriv_workflow
open Wfpriv_privacy

type t

val make :
  ?generation:int -> ?shards:int -> Privilege.t -> level:Privilege.level -> t
(** Gate for one user level over one specification's expansion-level
    assignment. The allowed prefix is materialized immediately; views,
    the hierarchy and module floors are built lazily and memoized.
    [generation] (default 0) pins the gate to one epoch of a live
    repository: it enters {!fingerprint}, so everything keyed by
    fingerprints re-partitions per committed batch. [shards] (default 1)
    pins it to a shard topology the same way — a sharded store's
    generation counter and merge behaviour are topology-relative, so
    results must not cross layouts. Raises [Invalid_argument] when
    [generation] is negative or [shards < 1]. *)

val of_policy :
  ?generation:int -> ?shards:int -> Policy.t -> level:Privilege.level -> t
(** Same, additionally carrying the policy's data classification so
    {!data_readable} reflects data privacy. *)

val unrestricted : ?generation:int -> ?shards:int -> Spec.t -> t
(** A gate that allows everything (public privilege at level 0) — for
    callers that need engine preparation without privacy. *)

val spec : t -> Spec.t
val level : t -> Privilege.level

val generation : t -> int
(** The epoch the gate was built against; 0 for frozen repositories. *)

val shards : t -> int
(** The shard topology the gate was built against; 1 for unsharded
    stores. *)

val allowed : t -> Ids.workflow_id list
(** The user's access prefix, sorted — materialized once at gate
    construction. *)

val allows_workflow : t -> Ids.workflow_id -> bool
(** Constant-time membership in the allowed prefix. *)

val workflow_floor : t -> Ids.workflow_id -> Privilege.level
(** Effective level required to expand the workflow. *)

val sees_module : t -> Ids.module_id -> bool
(** Whether the module is visible at the gate's level (its whole ancestor
    chain expandable). Memoized. *)

val module_floor : t -> Ids.module_id -> Privilege.level
(** Smallest level at which the module is visible. Memoized; shares the
    gate's hierarchy instead of rebuilding one per call. *)

val data_readable : t -> string -> bool
(** Whether a data name is readable at the gate's level; always [true]
    for gates without a classification ({!make}, {!unrestricted}). *)

val spec_view : t -> View.t
(** The access view of the specification (memoized). *)

val prepare : t -> unit
(** Materialize every lazily-built piece of the gate now — hierarchy,
    spec view and the floor of every module of the spec. After [prepare]
    the gate is immutable: all accessors are pure reads of memo tables,
    so one prepared gate may be consulted concurrently from many domains
    (the contract batched evaluation relies on). Idempotent. *)

val fingerprint : t -> string
(** Canonical digest of the gate's visibility state: the level (as a
    syntactic prefix, so keys derived from fingerprints are partitioned
    by privilege level by construction), the generation when non-zero
    (so cache entries are additionally partitioned by epoch on a live
    repository — the frozen, generation-0 string is unchanged), the
    shard count when above one (partitioning by topology — the
    unsharded string is again unchanged), the
    allowed prefix, the visible module set and the data names hidden at
    the level. Two gates have equal fingerprints iff they answer every
    visibility question identically against the same epoch — the key
    discipline of the serving layer's privilege-partitioned result
    cache. Forces {!prepare}. *)

val exec_view : t -> Execution.t -> Exec_view.t
(** The access view of an execution. *)

val cap_view : t -> View.t -> View.t
(** Meet a candidate answer view with the access view — the "never show
    more than allowed" cap applied to every published answer. *)

val cap_prefix : t -> Ids.workflow_id list -> Ids.workflow_id list
(** Restrict a prefix to allowed workflows. *)

(** {2 Incremental refinement (zoom-out)} *)

val offending : t -> Ids.workflow_id list -> Ids.workflow_id list
(** Workflows of a prefix outside the allowed prefix. *)

val deepest_offender : t -> Ids.workflow_id list -> Ids.workflow_id option
(** The offending workflow of maximal hierarchy depth; depth ties are
    broken by lexicographically smallest workflow id so zoom-out collapse
    sequences are reproducible across runs. *)

val collapse : t -> Ids.workflow_id list -> Ids.workflow_id -> Ids.workflow_id list
(** Drop a workflow and its descendants from a prefix — one zoom-out
    step. *)

(** {2 Observability} *)

val denied_floors : t -> Query_ast.t -> Privilege.level list
(** Privilege floors, strictly above the gate's level, of everything the
    query names explicitly: [Module_is] predicates on modules the gate
    cannot see and [Inside] targets outside the allowed prefix.
    Ascending, duplicate-free. Pure observability — the evaluator runs
    on the access view regardless, so a non-empty result classifies the
    query as partially denied without changing its (privacy-safe)
    answer. *)

val audit_query : t -> Query_ast.t -> nodes:int -> unit
(** Record one evaluated structural query in the metrics registry and
    the audit log: bumps [gate.queries]/[gate.nodes] (and [gate.denials]
    when {!denied_floors} is non-empty) at the gate's level, then
    appends an {!Wfpriv_obs.Audit_log} record. A denial carries only the
    highest required floor, never the identity of what stayed hidden.
    No-op while observability is disabled. *)

val audit_zoom :
  t -> op:string -> ?floor:Privilege.level -> nodes:int -> unit -> unit
(** Record a zoom decision ([op] e.g. ["gate.zoom_in"]). [floor] present
    means the zoom was refused and that level would have been
    required. *)

val audit_view : t -> op:string -> nodes:int -> unit
(** Record an access-view materialization and its visible node count. *)

(** {2 Gate-free floors (index construction)} *)

val module_floors : Privilege.t -> Ids.module_id -> Privilege.level
(** Level-independent module floors for index construction: one shared
    hierarchy and memo table across all modules of the privilege's spec,
    replacing a [min_level_to_see] call (which rebuilds the hierarchy)
    per posting. *)
