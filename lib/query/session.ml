open Wfpriv_workflow

type t = {
  gate : Access_gate.t;
  exec : Execution.t;
  mutable view : Exec_view.t;
  mutable denied : (int * Wfpriv_privacy.Privilege.level) list; (* reversed *)
  mutable engine : (Ids.workflow_id list * Engine.t) option;
      (* prepared engine for the current prefix; closure memoized inside,
         so repeated structural queries at one zoom level are O(plan) *)
}

type zoom_result =
  | Ok of Exec_view.t
  | Denied of Wfpriv_privacy.Privilege.level
  | Not_expandable

let start_gated gate exec =
  { gate; exec; view = Exec_view.coarsest exec; denied = []; engine = None }

let start privilege ~level exec =
  start_gated (Access_gate.make privilege ~level) exec

let current t = t.view
let gate t = t.gate
let level t = Access_gate.level t.gate
let generation t = Access_gate.generation t.gate
let shards t = Access_gate.shards t.gate
let prefix t = Exec_view.prefix t.view

let engine t =
  let p = prefix t in
  match t.engine with
  | Some (p', e) when p' = p -> e
  | _ ->
      let e = Engine.of_exec_view t.view in
      t.engine <- Some (p, e);
      e

let query t q =
  let w = Query_eval.of_engine (Engine.run_query (engine t) q) in
  Access_gate.audit_query t.gate q ~nodes:(List.length w.Query_eval.nodes);
  w

let query_batch ?pool t qs =
  let e = engine t in
  (* The gate must be read-only before plans fan out across domains:
     freeze its memo tables now (idempotent). *)
  Access_gate.prepare t.gate;
  let ws =
    Engine.run_batch ?pool e (List.map Engine.compile qs)
    |> List.map Query_eval.of_engine
  in
  (* Audit from the calling domain, after the join: recording sites stay
     single-domain per batch and the log order is the query order. *)
  List.iter2
    (fun q w ->
      Access_gate.audit_query t.gate q ~nodes:(List.length w.Query_eval.nodes))
    qs ws;
  ws

let search ?strategy t keywords =
  let spec = Execution.spec t.exec in
  let visible m = Access_gate.sees_module t.gate m in
  match Keyword.search ?strategy ~restrict_to:visible spec keywords with
  | None ->
      (* Audited like any other gated read, with a node count only. *)
      Access_gate.audit_view t.gate ~op:"gate.search" ~nodes:0;
      None
  | Some answer ->
      let capped = Access_gate.cap_view t.gate answer.Keyword.view in
      let answer = { answer with Keyword.view = capped } in
      Access_gate.audit_view t.gate ~op:"gate.search"
        ~nodes:(List.length (View.visible_modules capped));
      Some answer

(* The workflow a collapsed view node would expand into. *)
let expansion_of_node t n =
  if not (Exec_view.is_collapsed t.view n) then None
  else
    match Exec_view.module_of_node t.view n with
    | Some m ->
        Module_def.expansion (Spec.find_module (Execution.spec t.exec) m)
    | None -> None

let set_view t view =
  t.view <- view;
  t.engine <- None

let zoom_in t n =
  if not (List.mem n (Exec_view.nodes t.view)) then Not_expandable
  else
    match expansion_of_node t n with
    | None -> Not_expandable
    | Some w ->
        let required = Access_gate.workflow_floor t.gate w in
        if required > level t then begin
          t.denied <- (n, required) :: t.denied;
          (* Audited with the required floor only — not the node or the
             workflow it would have revealed. *)
          Access_gate.audit_zoom t.gate ~op:"gate.zoom_in" ~floor:required
            ~nodes:0 ();
          Denied required
        end
        else begin
          let view = Exec_view.of_prefix t.exec (w :: prefix t) in
          set_view t view;
          Access_gate.audit_zoom t.gate ~op:"gate.zoom_in"
            ~nodes:(List.length (Exec_view.nodes view))
            ();
          Ok view
        end

let zoom_out t w =
  let spec = Execution.spec t.exec in
  if w = Spec.root spec || not (List.mem w (prefix t)) then Not_expandable
  else begin
    let view = Exec_view.of_prefix t.exec (Access_gate.collapse t.gate (prefix t) w) in
    set_view t view;
    Access_gate.audit_zoom t.gate ~op:"gate.zoom_out"
      ~nodes:(List.length (Exec_view.nodes view))
      ();
    Ok view
  end

let zoom_to_access_view t =
  let view = Access_gate.exec_view t.gate t.exec in
  set_view t view;
  Access_gate.audit_view t.gate ~op:"gate.access_view"
    ~nodes:(List.length (Exec_view.nodes view));
  view

let fingerprint t =
  Printf.sprintf "%s/p{%s}"
    (Access_gate.fingerprint t.gate)
    (String.concat "," (prefix t))

let denied_attempts t = List.rev t.denied

let within_access_view t =
  List.for_all (Access_gate.allows_workflow t.gate) (prefix t)
