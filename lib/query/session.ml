open Wfpriv_workflow
open Wfpriv_privacy

type t = {
  privilege : Privilege.t;
  s_level : Privilege.level;
  exec : Execution.t;
  mutable view : Exec_view.t;
  mutable denied : (int * Privilege.level) list; (* reversed *)
}

type zoom_result =
  | Ok of Exec_view.t
  | Denied of Privilege.level
  | Not_expandable

let start privilege ~level exec =
  {
    privilege;
    s_level = level;
    exec;
    view = Exec_view.coarsest exec;
    denied = [];
  }

let current t = t.view
let level t = t.s_level
let prefix t = Exec_view.prefix t.view

(* The workflow a collapsed view node would expand into. *)
let expansion_of_node t n =
  if not (Exec_view.is_collapsed t.view n) then None
  else
    match Exec_view.module_of_node t.view n with
    | Some m ->
        Module_def.expansion (Spec.find_module (Execution.spec t.exec) m)
    | None -> None

let zoom_in t n =
  if not (List.mem n (Exec_view.nodes t.view)) then Not_expandable
  else
    match expansion_of_node t n with
    | None -> Not_expandable
    | Some w ->
        let required = Privilege.required_level t.privilege w in
        if required > t.s_level then begin
          t.denied <- (n, required) :: t.denied;
          Denied required
        end
        else begin
          let view = Exec_view.of_prefix t.exec (w :: prefix t) in
          t.view <- view;
          Ok view
        end

let zoom_out t w =
  let spec = Execution.spec t.exec in
  if w = Spec.root spec || not (List.mem w (prefix t)) then Not_expandable
  else begin
    let hierarchy = Hierarchy.of_spec spec in
    let drop = Hierarchy.descendants hierarchy w in
    let p = List.filter (fun x -> not (List.mem x drop)) (prefix t) in
    let view = Exec_view.of_prefix t.exec p in
    t.view <- view;
    Ok view
  end

let zoom_to_access_view t =
  let view =
    Privilege.access_exec_view t.privilege t.s_level t.exec
  in
  t.view <- view;
  view

let denied_attempts t = List.rev t.denied

let within_access_view t =
  let allowed = Privilege.access_prefix t.privilege t.s_level in
  List.for_all (fun w -> List.mem w allowed) (prefix t)
