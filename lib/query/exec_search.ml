open Wfpriv_workflow

type witness = Module_witness of int | Data_witness of Ids.data_id

type match_info = {
  keyword : string;
  chosen : witness;
  required_prefix : Ids.workflow_id list;
}

type answer = { view : Exec_view.t; matches : match_info list }

(* Expansion workflow of a composite execution, looked up by process id. *)
let workflow_of_proc exec =
  let table = Hashtbl.create 8 in
  List.iter
    (fun n ->
      match Execution.node_kind exec n with
      | Execution.Begin_composite { proc; module_id } -> (
          match
            Module_def.expansion (Spec.find_module (Execution.spec exec) module_id)
          with
          | Some w -> Hashtbl.replace table proc w
          | None -> assert false)
      | _ -> ())
    (Execution.nodes exec);
  fun proc -> Hashtbl.find table proc

(* Enclosing scope whose expansion the witness needs; for begin/end nodes
   the node's own process id is dropped (a collapsed composite is still a
   visible witness for its module). *)
let node_requirement exec n =
  let scope = Execution.scope exec n in
  match Execution.node_kind exec n with
  | Execution.Begin_composite _ | Execution.End_composite _ -> (
      match List.rev scope with [] -> [] | _ :: outer -> List.rev outer)
  | _ -> scope

let common_prefix a b =
  let rec go a b acc =
    match (a, b) with
    | x :: a', y :: b' when x = y -> go a' b' (x :: acc)
    | _ -> List.rev acc
  in
  go a b []

let required_prefix exec w =
  let root = Spec.root (Execution.spec exec) in
  let wf_of = workflow_of_proc exec in
  let procs =
    match w with
    | Module_witness n -> node_requirement exec n
    | Data_witness d ->
        ignore (Execution.find_item exec d);
        (* The item is visible through whichever carrying edge crosses
           composite boundaries the shallowest. *)
        let g = Execution.graph exec in
        let carrying =
          Wfpriv_graph.Digraph.fold_edges
            (fun u v acc ->
              if List.mem d (Execution.edge_items exec u v) then
                common_prefix (Execution.scope exec u) (Execution.scope exec v)
                :: acc
              else acc)
            g []
        in
        (match
           List.sort (fun a b -> compare (List.length a) (List.length b)) carrying
         with
        | shallowest :: _ -> shallowest
        | [] ->
            (* An item on no edge (dead output): fall back to its
               producer's requirement. *)
            node_requirement exec (Execution.find_item exec d).Execution.producer)
  in
  List.sort_uniq compare (root :: List.map wf_of procs)

let keyword_matches_name keyword name =
  let keyword = String.lowercase_ascii keyword in
  let name = String.lowercase_ascii name in
  let n = String.length keyword and h = String.length name in
  n > 0
  &&
  let rec at i = i + n <= h && (String.sub name i n = keyword || at (i + 1)) in
  at 0

let witness_candidates exec keyword =
  (* Module hits through the raw-execution engine (I/O nodes have no
     module and never match); end nodes are dropped so a composite is
     witnessed by its begin node only. *)
  let engine = Engine.of_execution exec in
  let module_hits =
    List.filter
      (fun n ->
        match Execution.node_kind exec n with
        | Execution.End_composite _ -> false
        | _ -> true)
      (Engine.matching engine (Query_ast.Name_matches keyword))
  in
  let data_hits =
    List.filter_map
      (fun (it : Execution.item) ->
        if keyword_matches_name keyword it.Execution.name then
          Some it.Execution.data_id
        else None)
      (Execution.items exec)
  in
  List.map (fun n -> Module_witness n) module_hits
  @ List.map (fun d -> Data_witness d) data_hits

let search ?(restrict_to = fun _ -> true) exec keywords =
  if keywords = [] then invalid_arg "Exec_search.search: empty keyword list";
  let per_kw =
    List.map
      (fun kw ->
        (kw, List.filter restrict_to (witness_candidates exec kw)))
      keywords
  in
  if List.exists (fun (_, ws) -> ws = []) per_kw then None
  else begin
    let chosen =
      List.map
        (fun (kw, ws) ->
          let scored =
            List.map (fun w -> (List.length (required_prefix exec w), w)) ws
          in
          let best =
            List.fold_left
              (fun acc cand -> if cand < acc then cand else acc)
              (List.hd scored) (List.tl scored)
          in
          (kw, snd best))
        per_kw
    in
    let prefix =
      List.concat_map (fun (_, w) -> required_prefix exec w) chosen
      |> List.sort_uniq compare
    in
    let view = Exec_view.of_prefix exec prefix in
    let matches =
      List.map
        (fun (keyword, chosen) ->
          { keyword; chosen; required_prefix = required_prefix exec chosen })
        chosen
    in
    Some { view; matches }
  end
