(** Keyword search over executions — the provenance half of the paper's
    Sec. 1 promise ("search and query both workflow specifications and
    their provenance graphs").

    A keyword matches an execution through a {e module witness} (an
    execution node whose module's name/keywords match) or a {e data
    witness} (an item whose data name contains the keyword). The answer
    is the coarsest execution view making a witness of every keyword
    visible:

    - a module execution is visible once every enclosing composite
      execution is expanded (its scope chain);
    - a data item is visible once at least one edge carrying it survives
      collapsing, i.e. the common composite scope of that edge's
      endpoints is expanded.

    Witnesses are chosen to minimise the expanded-workflow count, ties
    broken deterministically; [restrict_to] is the privacy hook, as in
    {!Keyword.search}. *)

type witness =
  | Module_witness of int  (** execution node id *)
  | Data_witness of Wfpriv_workflow.Ids.data_id

type match_info = {
  keyword : string;
  chosen : witness;
  required_prefix : Wfpriv_workflow.Ids.workflow_id list;
      (** what the chosen witness forces open, root included, sorted *)
}

type answer = {
  view : Wfpriv_workflow.Exec_view.t;
  matches : match_info list;  (** one per keyword, query order *)
}

val witness_candidates :
  Wfpriv_workflow.Execution.t -> string -> witness list
(** All witnesses for one keyword: module witnesses (begin nodes for
    composites) then data witnesses, each sorted. *)

val required_prefix :
  Wfpriv_workflow.Execution.t -> witness -> Wfpriv_workflow.Ids.workflow_id list
(** Minimal prefix making the witness visible. *)

val search :
  ?restrict_to:(witness -> bool) ->
  Wfpriv_workflow.Execution.t ->
  string list ->
  answer option
(** [None] when some keyword has no (admissible) witness. Raises
    [Invalid_argument] on an empty keyword list. *)
