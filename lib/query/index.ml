open Wfpriv_workflow
open Wfpriv_privacy
module Smap = Map.Make (String)
module Iset = Set.Make (Int)
module Pool = Wfpriv_parallel.Pool
module Shard = Wfpriv_parallel.Shard
module Obs = Wfpriv_obs

(* Builds are operator work over every level's postings; lookups happen
   at a caller level, so they record into that level's cell — a lookup
   at level [l] only merges partitions [<= l], and its posting count is
   attributable (and visible) to observers at [l]. *)
let m_builds = Obs.Registry.counter "index.builds"
let m_build_postings = Obs.Registry.counter "index.build_postings"
let m_build_terms = Obs.Registry.counter "index.build_terms"
let m_lookups = Obs.Registry.counter "index.lookups"
let m_lookup_postings = Obs.Registry.counter "index.lookup_postings"
let m_topk = Obs.Registry.counter "index.topk_queries"
let h_build_ns = Obs.Registry.histogram "index.build_ns"

type posting = {
  doc : string;
  module_id : Ids.module_id;
  min_level : Privilege.level;
}

(* Level-partitioned postings (the paper's privacy-partitioned index),
   now succinct: doc names are interned into dense ids (Symtab) and each
   (term, level) partition is a delta-compressed block sequence
   (Postings). A lookup at level [l] decodes exactly the partitions with
   level <= l and never touches a posting above the caller's privilege;
   [cum_df.(i)] is the number of distinct docs across partitions
   [0 .. i], so IDF at level [l] is likewise a function of levels <= l
   only (plus the public doc count). *)
type term_entry = { parts : Postings.t array; cum_df : int array }

type t = {
  symtab : Symtab.t;
  tmap : term_entry Smap.t;
  terms : int;
  total : int;
}

let posting_compare a b =
  compare (a.doc, a.module_id, a.min_level) (b.doc, b.module_id, b.min_level)

let entry_postings (name, spec, privilege) =
  let floor = Access_gate.module_floors privilege in
  List.concat_map
    (fun m ->
      let md = Spec.find_module spec m in
      let min_level = floor m in
      List.map
        (fun term -> (term, { doc = name; module_id = m; min_level }))
        (Module_def.terms md))
    (Spec.module_ids spec)

(* Encode one term's postings: sort by (level, doc, module), run-length
   duplicate (level, doc, module) triples into frequencies, and emit one
   compressed partition per level plus the cumulative-df table. *)
let encode_term symtab postings =
  let keyed =
    List.map
      (fun p ->
        let doc =
          match Symtab.find_opt symtab p.doc with
          | Some id -> id
          | None -> invalid_arg "Index: posting for an unknown doc"
        in
        (p.min_level, doc, p.module_id))
      postings
    |> List.sort compare
  in
  let rec group = function
    | [] -> []
    | (l, d, m) :: rest ->
        let rec count n = function
          | (l', d', m') :: tl when l' = l && d' = d && m' = m ->
              count (n + 1) tl
          | tl -> (n, tl)
        in
        let tf, rest = count 1 rest in
        (l, d, m, tf) :: group rest
  in
  let grouped = group keyed in
  let rec partitions seen = function
    | [] -> []
    | (l, _, _, _) :: _ as xs ->
        let mine, rest = List.partition (fun (l', _, _, _) -> l' = l) xs in
        let triples = List.map (fun (_, d, m, tf) -> (d, m, tf)) mine in
        let seen =
          List.fold_left (fun s (d, _, _) -> Iset.add d s) seen triples
        in
        (Postings.encode ~level:l triples, Iset.cardinal seen)
        :: partitions seen rest
  in
  let parts = partitions Iset.empty grouped in
  {
    parts = Array.of_list (List.map fst parts);
    cum_df = Array.of_list (List.map snd parts);
  }

(* Term-keyed encode of a token subset. All postings of one term share a
   hash, hence a shard, so sharded builds encode every term from exactly
   the posting sub-list the sequential build sees — identical blocks
   either way. *)
let shard_terms symtab postings =
  let by_term =
    List.fold_left
      (fun acc (term, p) ->
        Smap.update term
          (function None -> Some [ p ] | Some ps -> Some (p :: ps))
          acc)
      Smap.empty postings
  in
  Smap.map (encode_term symtab) by_term

let sum_postings te =
  Array.fold_left (fun acc p -> acc + Postings.postings p) 0 te.parts

let of_postings ?pool ~docs postings =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let symtab = Symtab.of_sorted docs in
  let jobs = Pool.jobs pool in
  let tmap =
    if jobs <= 1 then shard_terms symtab postings
    else
      Shard.map_merge pool ~shards:(jobs * 2)
        ~hash:(fun (term, _) -> Hashtbl.hash term)
        ~map:(shard_terms symtab)
        ~merge:(Smap.union (fun _ a _ -> Some a))
        ~init:Smap.empty postings
  in
  let total = Smap.fold (fun _ te acc -> acc + sum_postings te) tmap 0 in
  { symtab; tmap; terms = Smap.cardinal tmap; total }

let build_postings ?pool postings =
  let docs =
    List.sort_uniq String.compare (List.map (fun (_, p) -> p.doc) postings)
  in
  of_postings ?pool ~docs postings

let build ?pool entries =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* Duplicate-name detection in one Map pass. *)
  ignore
    (List.fold_left
       (fun seen (n, _, _) ->
         if Smap.mem n seen then
           invalid_arg "Index.build: duplicate entry names"
         else Smap.add n () seen)
       Smap.empty entries);
  let idx =
    Obs.Trace.with_span "index.build"
      ~attrs:(fun () -> [ ("entries", string_of_int (List.length entries)) ])
      (fun () ->
        Obs.Histogram.time h_build_ns (fun () ->
            (* Posting extraction is independent per entry (each call
               builds its own floor memo); block encoding then shards by
               token hash across domains, merged by disjoint-key map
               union in shard order. *)
            let jobs = Pool.jobs pool in
            let postings =
              if jobs <= 1 || List.length entries <= 1 then
                List.concat_map entry_postings entries
              else
                Pool.parallel_map_list ~chunk:1 pool entry_postings entries
                |> List.concat
            in
            let docs =
              List.sort String.compare (List.map (fun (n, _, _) -> n) entries)
            in
            of_postings ~pool ~docs postings))
  in
  Obs.Counter.incr_op m_builds;
  Obs.Counter.add_op m_build_postings idx.total;
  Obs.Counter.add_op m_build_terms idx.terms;
  idx

let visible_parts te ~level =
  let rec take i acc =
    if i < Array.length te.parts && Postings.level te.parts.(i) <= level then
      take (i + 1) (te.parts.(i) :: acc)
    else List.rev acc
  in
  take 0 []

let find_term t term = Smap.find_opt (String.lowercase_ascii term) t.tmap

(* Merge already-sorted posting lists, dropping duplicates across lists
   (none can occur: partitions have distinct levels) while keeping the
   in-partition duplicates that encode frequencies > 1. *)
let merge_sorted a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
        let c = posting_compare x y in
        if c < 0 then go a' b (x :: acc)
        else if c > 0 then go a b' (y :: acc)
        else go a' b' (x :: acc)
  in
  go a b []

let decode_part t ~at part =
  let acc = ref [] in
  Postings.iter ~at part (fun d m tf ->
      let p =
        {
          doc = Symtab.name t.symtab d;
          module_id = m;
          min_level = Postings.level part;
        }
      in
      for _ = 1 to tf do
        acc := p :: !acc
      done);
  List.rev !acc

let lookup_parts t ~at parts =
  List.fold_left
    (fun acc part -> merge_sorted acc (decode_part t ~at part))
    [] parts

let lookup t ~level term =
  Obs.Counter.incr m_lookups ~at:level;
  let found =
    match find_term t term with
    | None -> []
    | Some te -> lookup_parts t ~at:level (visible_parts te ~level)
  in
  Obs.Counter.add m_lookup_postings ~at:level (List.length found);
  found

let nb_terms t = t.terms
let nb_postings t = t.total
let doc_count t = Symtab.size t.symtab

let encoded_bytes t =
  Smap.fold
    (fun _ te acc ->
      acc + Array.fold_left (fun a p -> a + Postings.bytes p) 0 te.parts)
    t.tmap 0

type level_stat = {
  stat_level : Privilege.level;
  stat_partitions : int;
  stat_postings : int;
  stat_bytes : int;
}

let level_stats t =
  let m =
    Smap.fold
      (fun _ te acc ->
        Array.fold_left
          (fun acc p ->
            let l = Postings.level p in
            let parts, posts, bytes =
              match List.assoc_opt l acc with
              | Some s -> s
              | None -> (0, 0, 0)
            in
            (l, (parts + 1, posts + Postings.postings p, bytes + Postings.bytes p))
            :: List.remove_assoc l acc)
          acc te.parts)
      t.tmap []
  in
  List.sort compare m
  |> List.map (fun (l, (parts, posts, bytes)) ->
         {
           stat_level = l;
           stat_partitions = parts;
           stat_postings = posts;
           stat_bytes = bytes;
         })

(* {2 Query terms and leakage-safe scoring}

   The scoring model shared by the exhaustive ranker and the block-max
   WAND ranker, computed bit-for-bit identically in both: the query's
   distinct terms in first-occurrence order, each weighted by
   multiplicity * idf, and a doc's score accumulated term-at-a-time as
   weight * (total frequency at levels <= l). N is the public document
   count; df at level l comes from the cumulative-df table at the
   largest partition <= l — every input is a function of the partitions
   the caller may see. *)

let group_terms terms =
  List.fold_left
    (fun acc term ->
      let term = String.lowercase_ascii term in
      let rec bump = function
        | [] -> [ (term, 1) ]
        | (t, n) :: rest when String.equal t term -> (t, n + 1) :: rest
        | x :: rest -> x :: bump rest
      in
      bump acc)
    [] terms

let df t ~level term =
  match find_term t term with
  | None -> 0
  | Some te ->
      let rec last i acc =
        if i < Array.length te.parts && Postings.level te.parts.(i) <= level
        then last (i + 1) te.cum_df.(i)
        else acc
      in
      last 0 0

let idf t ~level term =
  Tfidf.idf_for ~n:(Symtab.size t.symtab) ~df:(df t ~level term)

let weighted_terms t ~level terms =
  List.map
    (fun (term, mult) -> (term, float_of_int mult *. idf t ~level term))
    (group_terms terms)

let query_terms = group_terms

(* Scoring against caller-supplied term weights: the LSM view computes
   global idf weights once across all segments, then scores each segment
   with them — the per-doc accumulation below is then bit-identical to a
   frozen single-index build's (same weights, same term order, same
   int-tf sums, same float operations). *)
let score_entries_weighted t ~level weighted =
  let n = Symtab.size t.symtab in
  let scores = Array.make (max n 1) 0.0 in
  let seen = Array.make (max n 1) false in
  let tf_acc = Array.make (max n 1) 0 in
  List.iter
    (fun (term, weight) ->
      match find_term t term with
      | None -> ()
      | Some te ->
          let touched = ref [] in
          List.iter
            (fun part ->
              Postings.iter ~at:level part (fun d _ tf ->
                  if tf_acc.(d) = 0 then touched := d :: !touched;
                  tf_acc.(d) <- tf_acc.(d) + tf))
            (visible_parts te ~level);
          List.iter
            (fun d ->
              scores.(d) <- scores.(d) +. (weight *. float_of_int tf_acc.(d));
              tf_acc.(d) <- 0;
              seen.(d) <- true)
            !touched)
    weighted;
  let acc = ref [] in
  for d = n - 1 downto 0 do
    if seen.(d) then
      acc := { Ranking.doc = Symtab.name t.symtab d; score = scores.(d) } :: !acc
  done;
  !acc

let score_entries t ~level terms =
  score_entries_weighted t ~level (weighted_terms t ~level terms)

(* An aggregated per-term cursor over the partitions visible at the
   caller's level: current doc is the minimum over partition cursors,
   frequency the sum at that doc; block bounds sum partition block maxima
   and never decode. *)
type cursor = { tcs : Postings.cursor array; syms : Symtab.t }

let cursor t ~level term =
  let parts =
    match find_term t term with
    | None -> []
    | Some te -> visible_parts te ~level
  in
  {
    tcs = Array.of_list (List.map (Postings.cursor ~at:level) parts);
    syms = t.symtab;
  }

let tcur_doc c =
  Array.fold_left (fun acc pc -> min acc (Postings.cur pc)) max_int c.tcs

let tcur_lower_bound c =
  Array.fold_left
    (fun acc pc -> min acc (Postings.lower_bound pc))
    max_int c.tcs

let tcur_seek c target = Array.iter (fun pc -> Postings.seek pc target) c.tcs

let tcur_tf_at c d =
  Array.fold_left
    (fun acc pc -> if Postings.cur pc = d then acc + Postings.tf pc else acc)
    0 c.tcs

let tcur_next_at c d =
  Array.iter (fun pc -> if Postings.cur pc = d then Postings.next pc) c.tcs

let tcur_block_last c =
  Array.fold_left
    (fun acc pc -> min acc (Postings.block_last pc))
    max_int c.tcs

let tcur_block_max c =
  Array.fold_left (fun acc pc -> acc + Postings.block_max_tf pc) 0 c.tcs

let tcur_global_max c =
  Array.fold_left (fun acc pc -> acc + Postings.global_max_tf pc) 0 c.tcs

let cursor_next c =
  let d = tcur_doc c in
  if d = max_int then None
  else begin
    let tf = tcur_tf_at c d in
    tcur_next_at c d;
    Some (Symtab.name c.syms d, tf)
  end

let wand_cursor c ~weight =
  {
    Ranking.wc_ub = weight *. float_of_int (tcur_global_max c);
    wc_lb = (fun () -> tcur_lower_bound c);
    wc_block_max = (fun () -> weight *. float_of_int (tcur_block_max c));
    wc_block_last = (fun () -> tcur_block_last c);
    wc_cur = (fun () -> tcur_doc c);
    wc_score =
      (fun d ->
        tcur_seek c d;
        weight *. float_of_int (tcur_tf_at c d));
    wc_seek = (fun target -> tcur_seek c target);
    wc_next = (fun d -> tcur_next_at c d);
  }

(* WAND against caller-supplied weights — the per-shard half of the
   sharded global merge: each shard runs block-max WAND with weights
   computed once from global corpus statistics, so per-shard scores are
   the floats the unsharded index would produce for the same docs. *)
let top_k_weighted t ~level ~k weighted =
  Obs.Counter.incr m_topk ~at:level;
  let cursors =
    List.filter_map
      (fun (term, weight) ->
        let c = cursor t ~level term in
        if Array.length c.tcs = 0 then None else Some (wand_cursor c ~weight))
      weighted
  in
  Ranking.top_k_wand ~k ~doc:(Symtab.name t.symtab) cursors

let top_k t ~level ~k terms =
  top_k_weighted t ~level ~k (weighted_terms t ~level terms)

(* An upper bound on any single doc's score in this index at the level:
   sum of weight * (global max aggregated tf at partitions <= level) per
   term. Reads only partition metadata visible at the level — no block
   is decoded — and float monotonicity (products of non-negative floats,
   sums accumulated in the same term order as scoring) makes the bound
   conservative under rounding: a shard pruned by it cannot hold a
   top-k doc. *)
let max_score t ~level weighted =
  List.fold_left
    (fun acc (term, weight) ->
      let c = cursor t ~level term in
      if Array.length c.tcs = 0 then acc
      else acc +. (weight *. float_of_int (tcur_global_max c)))
    0.0 weighted

let matching_docs t ~level terms =
  let terms = List.sort_uniq compare (List.map String.lowercase_ascii terms) in
  if terms = [] then []
  else begin
    let cursors = List.map (fun term -> cursor t ~level term) terms in
    if List.exists (fun c -> Array.length c.tcs = 0) cursors then []
    else begin
      let cs = Array.of_list cursors in
      let n = Array.length cs in
      let acc = ref [] in
      (* Galloping conjunctive intersection: chase the largest current
         doc with block-skipping seeks until all cursors agree. *)
      let rec align d i agreed =
        if d = max_int then ()
        else if agreed = n then begin
          acc := Symtab.name t.symtab d :: !acc;
          Array.iter (fun c -> tcur_next_at c d) cs;
          let d' = tcur_doc cs.(0) in
          align d' (1 mod n) 1
        end
        else begin
          tcur_seek cs.(i) d;
          let d' = tcur_doc cs.(i) in
          if d' = d then align d ((i + 1) mod n) (agreed + 1)
          else align d' ((i + 1) mod n) 1
        end
      in
      align (tcur_doc cs.(0)) (1 mod n) 1;
      List.rev !acc
    end
  end

(* {2 Baselines for experiment E6} *)

type per_level = (Privilege.level * t) list

let build_per_level ~levels entries =
  let levels = List.sort_uniq compare levels in
  if levels = [] then invalid_arg "Index.build_per_level: no levels";
  (* One shared build; each materialised level keeps the partitions it
     may see (the strawman used to rebuild the whole index per level).
     Partition values are shared — the space proxy counts postings. *)
  let shared = build entries in
  List.map
    (fun level ->
      let tmap =
        Smap.filter_map
          (fun _ te ->
            match visible_parts te ~level with
            | [] -> None
            | kept ->
                let k = List.length kept in
                Some
                  {
                    parts = Array.of_list kept;
                    cum_df = Array.sub te.cum_df 0 k;
                  })
          shared.tmap
      in
      let total = Smap.fold (fun _ te acc -> acc + sum_postings te) tmap 0 in
      ( level,
        { symtab = shared.symtab; tmap; terms = Smap.cardinal tmap; total } ))
    levels

let lookup_per_level pl ~level term =
  let candidates = List.filter (fun (l, _) -> l <= level) pl in
  match List.rev candidates with
  | [] -> invalid_arg "Index.lookup_per_level: no index at or below the level"
  | (_, idx) :: _ ->
      Obs.Counter.incr m_lookups ~at:level;
      let found =
        match find_term idx term with
        | None -> []
        | Some te -> lookup_parts idx ~at:level (Array.to_list te.parts)
      in
      Obs.Counter.add m_lookup_postings ~at:level (List.length found);
      found

let per_level_postings pl =
  List.fold_left (fun acc (_, idx) -> acc + idx.total) 0 pl

let lookup_scan entries ~level term =
  let term = String.lowercase_ascii term in
  List.concat_map
    (fun entry ->
      List.filter
        (fun (t, p) -> String.equal t term && p.min_level <= level)
        (entry_postings entry)
      |> List.map snd)
    entries
  |> List.sort posting_compare
