open Wfpriv_workflow
open Wfpriv_privacy
module Smap = Map.Make (String)

type posting = {
  doc : string;
  module_id : Ids.module_id;
  min_level : Privilege.level;
}

type t = { postings : posting list Smap.t; terms : int; total : int }

let posting_compare a b =
  compare (a.doc, a.module_id, a.min_level) (b.doc, b.module_id, b.min_level)

let entry_postings (name, spec, privilege) =
  List.concat_map
    (fun m ->
      let md = Spec.find_module spec m in
      let min_level = Privilege.min_level_to_see privilege m in
      List.map
        (fun term -> (term, { doc = name; module_id = m; min_level }))
        (Module_def.terms md))
    (Spec.module_ids spec)

let build entries =
  let names = List.map (fun (n, _, _) -> n) entries in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Index.build: duplicate entry names";
  let postings =
    List.fold_left
      (fun acc (term, p) ->
        let cur = Option.value ~default:[] (Smap.find_opt term acc) in
        Smap.add term (p :: cur) acc)
      Smap.empty
      (List.concat_map entry_postings entries)
  in
  let postings = Smap.map (List.sort posting_compare) postings in
  let total = Smap.fold (fun _ l acc -> acc + List.length l) postings 0 in
  { postings; terms = Smap.cardinal postings; total }

let lookup t ~level term =
  Option.value ~default:[]
    (Smap.find_opt (String.lowercase_ascii term) t.postings)
  |> List.filter (fun p -> p.min_level <= level)

let nb_terms t = t.terms
let nb_postings t = t.total

type per_level = (Privilege.level * t) list

let build_per_level ~levels entries =
  let levels = List.sort_uniq compare levels in
  if levels = [] then invalid_arg "Index.build_per_level: no levels";
  List.map
    (fun level ->
      (* Materialise only what this level may see. *)
      let idx = build entries in
      let filtered =
        Smap.map
          (List.filter (fun p -> p.min_level <= level))
          idx.postings
        |> Smap.filter (fun _ l -> l <> [])
      in
      let total = Smap.fold (fun _ l acc -> acc + List.length l) filtered 0 in
      (level, { postings = filtered; terms = Smap.cardinal filtered; total }))
    levels

let lookup_per_level pl ~level term =
  let candidates = List.filter (fun (l, _) -> l <= level) pl in
  match List.rev candidates with
  | [] -> invalid_arg "Index.lookup_per_level: no index at or below the level"
  | (_, idx) :: _ ->
      Option.value ~default:[]
        (Smap.find_opt (String.lowercase_ascii term) idx.postings)

let per_level_postings pl =
  List.fold_left (fun acc (_, idx) -> acc + idx.total) 0 pl

let lookup_scan entries ~level term =
  let term = String.lowercase_ascii term in
  List.concat_map
    (fun entry ->
      List.filter
        (fun (t, p) -> String.equal t term && p.min_level <= level)
        (entry_postings entry)
      |> List.map snd)
    entries
  |> List.sort posting_compare
