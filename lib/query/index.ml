open Wfpriv_workflow
open Wfpriv_privacy
module Smap = Map.Make (String)
module Pool = Wfpriv_parallel.Pool
module Shard = Wfpriv_parallel.Shard
module Obs = Wfpriv_obs

(* Builds are operator work over every level's postings; lookups happen
   at a caller level, so they record into that level's cell — a lookup
   at level [l] only merges partitions [<= l], and its posting count is
   attributable (and visible) to observers at [l]. *)
let m_builds = Obs.Registry.counter "index.builds"
let m_build_postings = Obs.Registry.counter "index.build_postings"
let m_build_terms = Obs.Registry.counter "index.build_terms"
let m_lookups = Obs.Registry.counter "index.lookups"
let m_lookup_postings = Obs.Registry.counter "index.lookup_postings"
let h_build_ns = Obs.Registry.histogram "index.build_ns"

type posting = {
  doc : string;
  module_id : Ids.module_id;
  min_level : Privilege.level;
}

(* Level-partitioned postings (the paper's privacy-partitioned index):
   per term, one sorted array of postings per distinct min_level, the
   partitions in ascending level order. A lookup at level [l] merges
   exactly the partitions with level <= l and never touches a posting
   above the caller's privilege. *)
type t = {
  partitions : (Privilege.level * posting array) list Smap.t;
  terms : int;
  total : int;
}

let posting_compare a b =
  compare (a.doc, a.module_id, a.min_level) (b.doc, b.module_id, b.min_level)

let entry_postings (name, spec, privilege) =
  let floor = Access_gate.module_floors privilege in
  List.concat_map
    (fun m ->
      let md = Spec.find_module spec m in
      let min_level = floor m in
      List.map
        (fun term -> (term, { doc = name; module_id = m; min_level }))
        (Module_def.terms md))
    (Spec.module_ids spec)

(* Group a (min_level, doc, module)-sorted posting list into per-level
   partitions; within a partition the (doc, module) order is inherited
   from the sort. *)
let partition_sorted postings =
  let rec go = function
    | [] -> []
    | p :: _ as ps ->
        let level = p.min_level in
        let mine, rest = List.partition (fun q -> q.min_level = level) ps in
        (level, Array.of_list mine) :: go rest
  in
  go postings

(* Merge already-sorted posting lists, dropping duplicates — O(total)
   per pair instead of the old sort-the-concatenation rescan. *)
let merge_sorted a b =
  let rec go a b acc =
    match (a, b) with
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: a', y :: b' ->
        let c = posting_compare x y in
        if c < 0 then go a' b (x :: acc)
        else if c > 0 then go a b' (y :: acc)
        else go a' b' (x :: acc)
  in
  go a b []

let merge_partitions parts =
  List.fold_left
    (fun acc (_, arr) -> merge_sorted acc (Array.to_list arr))
    [] parts

let partition_count parts =
  List.fold_left (fun acc (_, arr) -> acc + Array.length arr) 0 parts

(* Sort-and-partition the postings of a token subset into the per-level
   index shape. All postings of one term share a hash, hence a shard, so
   sharded builds see exactly the posting sub-lists the sequential build
   sees — partitions are identical either way. *)
let shard_partitions postings =
  let by_term =
    List.fold_left
      (fun acc (term, p) ->
        Smap.update term
          (function None -> Some [ p ] | Some ps -> Some (p :: ps))
          acc)
      Smap.empty postings
  in
  Smap.map
    (fun ps ->
      List.sort
        (fun a b ->
          compare (a.min_level, a.doc, a.module_id)
            (b.min_level, b.doc, b.module_id))
        ps
      |> partition_sorted)
    by_term

let build ?pool entries =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* Duplicate-name detection in one Map pass (was an O(n^2)-ish
     sort-and-compare over the whole name list). *)
  ignore
    (List.fold_left
       (fun seen (n, _, _) ->
         if Smap.mem n seen then
           invalid_arg "Index.build: duplicate entry names"
         else Smap.add n () seen)
       Smap.empty entries);
  let idx =
    Obs.Trace.with_span "index.build"
      ~attrs:(fun () -> [ ("entries", string_of_int (List.length entries)) ])
      (fun () ->
        Obs.Histogram.time h_build_ns (fun () ->
            (* Posting extraction is independent per entry (each call
               builds its own floor memo); token partitioning then shards
               the heavy sort-and-group across domains, merged by
               disjoint-key map union in shard order. *)
            let jobs = Pool.jobs pool in
            let postings =
              if jobs <= 1 || List.length entries <= 1 then
                List.concat_map entry_postings entries
              else
                Pool.parallel_map_list ~chunk:1 pool entry_postings entries
                |> List.concat
            in
            let partitions =
              if jobs <= 1 then shard_partitions postings
              else
                Shard.map_merge pool ~shards:(jobs * 2)
                  ~hash:(fun (term, _) -> Hashtbl.hash term)
                  ~map:shard_partitions
                  ~merge:(Smap.union (fun _ a _ -> Some a))
                  ~init:Smap.empty postings
            in
            let total =
              Smap.fold
                (fun _ parts acc -> acc + partition_count parts)
                partitions 0
            in
            { partitions; terms = Smap.cardinal partitions; total }))
  in
  Obs.Counter.incr_op m_builds;
  Obs.Counter.add_op m_build_postings idx.total;
  Obs.Counter.add_op m_build_terms idx.terms;
  idx

let lookup t ~level term =
  Obs.Counter.incr m_lookups ~at:level;
  let found =
    match Smap.find_opt (String.lowercase_ascii term) t.partitions with
    | None -> []
    | Some parts ->
        merge_partitions (List.filter (fun (l, _) -> l <= level) parts)
  in
  Obs.Counter.add m_lookup_postings ~at:level (List.length found);
  found

let nb_terms t = t.terms
let nb_postings t = t.total

type per_level = (Privilege.level * t) list

let build_per_level ~levels entries =
  let levels = List.sort_uniq compare levels in
  if levels = [] then invalid_arg "Index.build_per_level: no levels";
  (* One shared build; each materialised level keeps the partitions it
     may see (the strawman used to rebuild the whole index per level). *)
  let shared = build entries in
  List.map
    (fun level ->
      let partitions =
        Smap.filter_map
          (fun _ parts ->
            match List.filter (fun (l, _) -> l <= level) parts with
            | [] -> None
            | kept -> Some kept)
          shared.partitions
      in
      let total =
        Smap.fold (fun _ parts acc -> acc + partition_count parts) partitions 0
      in
      (level, { partitions; terms = Smap.cardinal partitions; total }))
    levels

let lookup_per_level pl ~level term =
  let candidates = List.filter (fun (l, _) -> l <= level) pl in
  match List.rev candidates with
  | [] -> invalid_arg "Index.lookup_per_level: no index at or below the level"
  | (_, idx) :: _ ->
      Obs.Counter.incr m_lookups ~at:level;
      let found =
        match Smap.find_opt (String.lowercase_ascii term) idx.partitions with
        | None -> []
        | Some parts -> merge_partitions parts
      in
      Obs.Counter.add m_lookup_postings ~at:level (List.length found);
      found

let per_level_postings pl =
  List.fold_left (fun acc (_, idx) -> acc + idx.total) 0 pl

let lookup_scan entries ~level term =
  let term = String.lowercase_ascii term in
  List.concat_map
    (fun entry ->
      List.filter
        (fun (t, p) -> String.equal t term && p.min_level <= level)
        (entry_postings entry)
      |> List.map snd)
    entries
  |> List.sort posting_compare
