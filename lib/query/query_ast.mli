(** Structural query language over workflow specifications and executions
    (paper, Sec. 4: "select sub-workflows based on structural
    properties", e.g. "find executions where Expand SNP Set was executed
    before Query OMIM").

    Queries combine node predicates with structural relations; they are
    evaluated against a {e view} (specification or execution), so privacy
    is enforced by choosing the view, not by the evaluator
    ({!Secure_eval}). *)

type node_pred =
  | Any
  | Name_matches of string
      (** case-insensitive substring of the module name or keywords *)
  | Module_is of Wfpriv_workflow.Ids.module_id
  | Atomic_only
  | Composite_only

type t =
  | Node of node_pred  (** some visible node matches *)
  | Edge of node_pred * node_pred  (** a direct dataflow edge between matches *)
  | Before of node_pred * node_pred
      (** a match of the first (strictly) precedes a match of the second
          in the dataflow order *)
  | Carries of node_pred * node_pred * string
      (** a direct edge between matches carrying the named data *)
  | Inside of node_pred * Wfpriv_workflow.Ids.workflow_id
      (** a match whose {e defining} workflow is (a descendant of) the
          named one — a τ-edge predicate, distinct from dataflow
          reachability (paper Sec. 5: "the difference between them cannot
          be ignored") *)
  | Refines of node_pred * node_pred
      (** the second match lies (transitively) inside the sub-workflow
          defining the first (composite) match — τ-descendancy between
          modules. Both matches must be visible, so this is meaningful on
          execution views (where an expanded composite's begin/end nodes
          coexist with its internals) and vacuous on specification views
          (expanding a composite splices it away). *)
  | And of t * t
  | Or of t * t
  | Not of t

val before_by_name : string -> string -> t
(** Convenience for the paper's example query shape. *)

val node_pred_to_string : node_pred -> string
val to_string : t -> string

val size : t -> int
(** Number of AST nodes (complexity measure for benches). *)
