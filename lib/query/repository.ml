open Wfpriv_workflow
open Wfpriv_privacy

type entry = {
  name : string;
  spec : Spec.t;
  policy : Policy.t;
  executions : Execution.t list;
}

type t = { mutable entries : entry list }

let create () = { entries = [] }

(* Snapshot isolation for the live path: every write below builds a new
   list (and new entry records) instead of mutating in place, so an O(1)
   capture of the current list is a full immutable snapshot — readers on
   a pinned generation keep querying it while the writer moves on. *)
let freeze t = { entries = t.entries }

let find t name =
  match List.find_opt (fun e -> String.equal e.name name) t.entries with
  | Some e -> e
  | None -> raise Not_found

let add t ~name ~policy ?(executions = []) () =
  if List.exists (fun e -> String.equal e.name name) t.entries then
    invalid_arg (Printf.sprintf "Repository.add: duplicate entry %S" name);
  let spec = Policy.spec policy in
  List.iter
    (fun exec ->
      if Execution.spec exec != spec then
        invalid_arg "Repository.add: execution of a different spec")
    executions;
  t.entries <- t.entries @ [ { name; spec; policy; executions } ]

let add_execution t ~name exec =
  let e = find t name in
  if Execution.spec exec != e.spec then
    invalid_arg "Repository.add_execution: execution of a different spec";
  t.entries <-
    List.map
      (fun e' ->
        if String.equal e'.name name then
          { e' with executions = e'.executions @ [ exec ] }
        else e')
      t.entries

(* Erasure: drop a whole entry, or redact every stored value of one data
   name inside an entry. Both build fresh lists/records so frozen
   snapshots keep the pre-erasure state (pinned readers stay consistent
   until they re-pin a newer generation). *)
let erase t ~name data_name =
  ignore (find t name);
  match data_name with
  | None ->
      t.entries <-
        List.filter (fun e -> not (String.equal e.name name)) t.entries
  | Some dn ->
      t.entries <-
        List.map
          (fun e ->
            if String.equal e.name name then
              {
                e with
                executions =
                  List.map (fun x -> Execution.redact_named x dn) e.executions;
              }
            else e)
          t.entries

(* Reified repository writes. The durable storage engine journals values
   of this type before applying them; new kinds extend the log format
   without touching existing records. *)
type mutation =
  | Add_entry of {
      entry_name : string;
      policy : Policy.t;
      executions : Execution.t list;
    }
  | Add_execution of { entry_name : string; exec : Execution.t }
  | Erase of { entry_name : string; data_name : string option }

(* Check a mutation without applying it, raising as [apply] would. Lets a
   write-ahead log refuse a doomed mutation before journaling it, so a
   record that reached the log always replays cleanly. *)
let validate t = function
  | Add_entry { entry_name; policy; executions } ->
      if List.exists (fun e -> String.equal e.name entry_name) t.entries then
        invalid_arg
          (Printf.sprintf "Repository.add: duplicate entry %S" entry_name);
      let spec = Policy.spec policy in
      List.iter
        (fun exec ->
          if Execution.spec exec != spec then
            invalid_arg "Repository.add: execution of a different spec")
        executions
  | Add_execution { entry_name; exec } ->
      let e = find t entry_name in
      if Execution.spec exec != e.spec then
        invalid_arg "Repository.add_execution: execution of a different spec"
  | Erase { entry_name; data_name = _ } -> ignore (find t entry_name)

let apply t = function
  | Add_entry { entry_name; policy; executions } ->
      add t ~name:entry_name ~policy ~executions ()
  | Add_execution { entry_name; exec } -> add_execution t ~name:entry_name exec
  | Erase { entry_name; data_name } -> erase t ~name:entry_name data_name

let names t = List.map (fun e -> e.name) t.entries |> List.sort compare
let nb_entries t = List.length t.entries

let visible_terms entry level =
  let gate = Access_gate.of_policy entry.policy ~level in
  List.concat_map
    (fun m -> Module_def.terms (Spec.find_module entry.spec m))
    (View.visible_modules (Access_gate.spec_view gate))

let visible_corpus t ~level =
  Tfidf.build (List.map (fun e -> (e.name, visible_terms e level)) t.entries)

let index_entries t =
  List.map (fun e -> (e.name, e.spec, Policy.privilege e.policy)) t.entries

let search_index ?pool t = Index.build ?pool (index_entries t)

let keyword_topk ?index t ~level ~k keywords =
  let index = match index with Some i -> i | None -> search_index t in
  (* The compressed index scores every module at floor <= level — the
     witness-admissibility predicate — where [keyword_search] scores the
     access view's frontier; both agree on which entries match. *)
  Engine.run_search_indexed ~index ~level (Plan.compile_search ~top:k keywords)

type search_hit = {
  entry_name : string;
  answer : Keyword.answer;
  score : float;
}

let keyword_search t ~level ?strategy ?quantize_scores keywords =
  let corpus = visible_corpus t ~level in
  let hits =
    List.filter_map
      (fun e ->
        let gate = Access_gate.of_policy e.policy ~level in
        let visible m = Access_gate.sees_module gate m in
        match Keyword.search ?strategy ~restrict_to:visible e.spec keywords with
        | None -> None
        | Some answer ->
            (* Never show more than the access view allows. *)
            let capped = Access_gate.cap_view gate answer.Keyword.view in
            let answer = { answer with Keyword.view = capped } in
            Some
              {
                entry_name = e.name;
                answer;
                score = Tfidf.score corpus ~doc:e.name keywords;
              })
      t.entries
  in
  (* Ranking runs as a compiled search pipeline: lookup (the hit scores),
     optional quantization, rank. *)
  let plan = Plan.compile_search ?quantize:quantize_scores keywords in
  let ranked =
    Engine.run_search
      ~lookup:(fun _ ->
        List.map (fun h -> { Ranking.doc = h.entry_name; score = h.score }) hits)
      plan
  in
  List.filter_map
    (fun (r : Ranking.entry) ->
      Option.map
        (fun h -> { h with score = r.Ranking.score })
        (List.find_opt (fun h -> String.equal h.entry_name r.Ranking.doc) hits))
    ranked

type prov_hit = {
  prov_entry : string;
  run : int;
  prov_answer : Exec_search.answer;
}

let provenance_search t ~level keywords =
  List.concat_map
    (fun e ->
      let gate = Access_gate.of_policy e.policy ~level in
      List.concat
        (List.mapi
           (fun run exec ->
             let displayable w =
               (* The witness must be exposable within the access view,
                  or the capped answer could not show it. *)
               List.for_all
                 (Access_gate.allows_workflow gate)
                 (Exec_search.required_prefix exec w)
             in
             let admissible w =
               displayable w
               &&
               match w with
               | Exec_search.Module_witness n -> (
                   match Execution.module_of_node exec n with
                   | Some m -> Access_gate.sees_module gate m
                   | None -> true)
               | Exec_search.Data_witness d ->
                   let item = Execution.find_item exec d in
                   Access_gate.data_readable gate item.Execution.name
             in
             match Exec_search.search ~restrict_to:admissible exec keywords with
             | None -> []
             | Some answer ->
                 (* Cap the answer at the caller's access view. *)
                 let capped_prefix =
                   Access_gate.cap_prefix gate
                     (Exec_view.prefix answer.Exec_search.view)
                 in
                 let answer =
                   {
                     answer with
                     Exec_search.view = Exec_view.of_prefix exec capped_prefix;
                   }
                 in
                 [ { prov_entry = e.name; run; prov_answer = answer } ])
           e.executions))
    t.entries
  |> List.sort (fun a b -> compare (a.prov_entry, a.run) (b.prov_entry, b.run))

let structural_query ?cache t ~level name q =
  let e = find t name in
  let gate = Access_gate.of_policy e.policy ~level in
  let plan = Plan.compile q in
  List.mapi
    (fun run exec ->
      let ev = Access_gate.exec_view gate exec in
      let engine =
        match cache with
        | None -> Engine.of_exec_view ev
        | Some c ->
            (* One prepared engine (and one memoized closure) per user
               group and run — Sec. 4's cached-information reuse. *)
            let key =
              Reach_cache.group_key ~entry:name ~run
                ~prefix:(Access_gate.allowed gate) ()
            in
            Reach_cache.engine c ~key ev
      in
      Query_eval.of_engine (Engine.run engine plan))
    e.executions
