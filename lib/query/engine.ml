open Wfpriv_workflow
module Digraph = Wfpriv_graph.Digraph
module Bitset = Wfpriv_graph.Bitset
module Pool = Wfpriv_parallel.Pool
module Obs = Wfpriv_obs

(* Engine metrics are operator-scope: a prepared view serves whatever
   gate built it, so per-level attribution happens one layer up (the
   gate's own counters). [run] itself never reads the clock — its only
   instrumentation is counter bumps — which keeps the null-sink overhead
   of a hot query loop to a few atomic adds. *)
let m_prepares = Obs.Registry.counter "engine.prepares"
let m_runs = Obs.Registry.counter "engine.runs"
let m_rows = Obs.Registry.counter "engine.rows"
let m_batches = Obs.Registry.counter "engine.batches"
let m_batch_plans = Obs.Registry.counter "engine.batch_plans"
let m_closure_builds = Obs.Registry.counter "engine.closure_builds"
let m_closure_rows = Obs.Registry.counter "engine.closure_rows"
let m_extends = Obs.Registry.counter "engine.extends"
let m_extend_rows = Obs.Registry.counter "engine.extend_rows"
let h_compile_ns = Obs.Registry.histogram "engine.compile_ns"
let h_closure_ns = Obs.Registry.histogram "engine.closure_build_ns"

type io = Io_input | Io_output | Io_none

type t = {
  e_spec : Spec.t;
  hierarchy : Hierarchy.t Lazy.t;
  n : int;
  node_of : int array; (* dense index -> external node id, ascending *)
  index_of : (int, int) Hashtbl.t; (* external node id -> dense index *)
  succs : int array array; (* dense -> dense, ascending *)
  modules : Ids.module_id option array;
  by_module : (Ids.module_id, int list) Hashtbl.t;
      (* dense indices per module id, ascending: [Module_is] is the hot
         predicate of selective structural batches, and a lookup beats
         re-scanning all n nodes on every query *)
  io_kind : io array;
  carries : (int * int, string list) Hashtbl.t Lazy.t;
      (* dense edge -> data names. Lazy: the build walks every edge
         asking the view for its carried items — a large share of
         preparation on big graphs — yet only carry-constrained edge
         joins ever read it. [run_batch] forces it before fanning out
         (Lazy is not domain-safe), like the hierarchy. *)
  reaches_override : (int -> int -> bool) option; (* over external ids *)
  closure : Bitset.t array option Atomic.t;
      (* the one mutable cell of a prepared view: written exactly once,
         under [closure_lock], through the Atomic so concurrent readers
         in a batch see fully-built rows or nothing *)
  closure_lock : Mutex.t;
}

type witness = { holds : bool; nodes : int list }

(* ------------------------------------------------------------------ *)
(* Preparation *)

let index_modules modules =
  let by_module = Hashtbl.create 64 in
  for i = Array.length modules - 1 downto 0 do
    match modules.(i) with
    | Some m ->
        let tl =
          match Hashtbl.find_opt by_module m with Some l -> l | None -> []
        in
        Hashtbl.replace by_module m (i :: tl)
    | None -> ()
  done;
  by_module

let prepare ~spec ~nodes ~succ_of ~module_of ~io_of ~carry_names ?reaches () =
  let node_of = Array.of_list nodes in
  let n = Array.length node_of in
  let index_of = Hashtbl.create (max n 1) in
  Array.iteri (fun i u -> Hashtbl.replace index_of u i) node_of;
  let succs =
    (* Execution node ids are near-contiguous in practice: when the id
       range is compact, a flat array lookaside replaces one hashtable
       probe per edge — a large share of preparation on dense graphs.
       Unknown endpoints still raise [Not_found] as the probe would. *)
    let lo = Array.fold_left min max_int node_of in
    let hi = Array.fold_left max min_int node_of in
    if n > 0 && hi - lo < (4 * n) + 8 then begin
      let map = Array.make (hi - lo + 1) (-1) in
      Array.iteri (fun i u -> map.(u - lo) <- i) node_of;
      let dense v =
        if v < lo || v > hi then raise Not_found
        else
          let i = map.(v - lo) in
          if i < 0 then raise Not_found else i
      in
      Array.map
        (fun u -> succ_of u |> List.map dense |> Array.of_list)
        node_of
    end
    else
      Array.map
        (fun u ->
          succ_of u |> List.map (Hashtbl.find index_of) |> Array.of_list)
        node_of
  in
  let carries =
    lazy
      (let carries = Hashtbl.create 32 in
       Array.iteri
         (fun i js ->
           Array.iter
             (fun j ->
               match carry_names node_of.(i) node_of.(j) with
               | [] -> ()
               | names -> Hashtbl.replace carries (i, j) names)
             js)
         succs;
       carries)
  in
  Obs.Counter.incr_op m_prepares;
  let modules = Array.map module_of node_of in
  {
    e_spec = spec;
    hierarchy = lazy (Hierarchy.of_spec spec);
    n;
    node_of;
    index_of;
    succs;
    modules;
    by_module = index_modules modules;
    io_kind = Array.map io_of node_of;
    carries;
    reaches_override = reaches;
    closure = Atomic.make None;
    closure_lock = Mutex.create ();
  }

let of_spec_view view =
  let g = View.graph view in
  prepare ~spec:(View.spec view) ~nodes:(Digraph.nodes g)
    ~succ_of:(Digraph.succ g)
    ~module_of:(fun m -> Some m)
    ~io_of:(fun _ -> Io_none)
    ~carry_names:(fun a b -> View.edge_data view a b)
    ()

let exec_io exec n =
  match Execution.node_kind exec n with
  | Execution.Input -> Io_input
  | Execution.Output -> Io_output
  | _ -> Io_none

let of_exec_view ?reaches ev =
  let g = Exec_view.graph ev in
  let e = Exec_view.exec ev in
  prepare ~spec:(Execution.spec e) ~nodes:(Digraph.nodes g)
    ~succ_of:(Digraph.succ g)
    ~module_of:(Exec_view.module_of_node ev)
    ~io_of:(exec_io e)
    ~carry_names:(fun u v ->
      Exec_view.edge_items ev u v
      |> List.map (fun d -> (Execution.find_item e d).Execution.name))
    ?reaches ()

let of_execution exec =
  let g = Execution.graph exec in
  prepare ~spec:(Execution.spec exec) ~nodes:(Digraph.nodes g)
    ~succ_of:(Digraph.succ g)
    ~module_of:(Execution.module_of_node exec)
    ~io_of:(exec_io exec)
    ~carry_names:(fun u v ->
      Execution.edge_items exec u v
      |> List.map (fun d -> (Execution.find_item exec d).Execution.name))
    ()

let of_spec ?reaches spec =
  (* Module universe: every module (composites included), edges from the
     union of the per-workflow dataflow graphs. *)
  let edge_data = Hashtbl.create 64 in
  List.iter
    (fun w ->
      List.iter
        (fun (e : Spec.edge) ->
          Hashtbl.replace edge_data (e.Spec.src, e.Spec.dst) e.Spec.data)
        (Spec.find_workflow spec w).Spec.edges)
    (Spec.workflow_ids spec);
  let g = Digraph.create () in
  List.iter (Digraph.add_node g) (Spec.module_ids spec);
  Hashtbl.iter (fun (u, v) _ -> Digraph.add_edge g u v) edge_data;
  prepare ~spec ~nodes:(Digraph.nodes g) ~succ_of:(Digraph.succ g)
    ~module_of:(fun m -> Some m)
    ~io_of:(fun _ -> Io_none)
    ~carry_names:(fun u v ->
      Option.value ~default:[] (Hashtbl.find_opt edge_data (u, v)))
    ?reaches ()

(* ------------------------------------------------------------------ *)
(* Accessors and predicate matching *)

let spec t = t.e_spec
let nb_nodes t = t.n
let nodes t = Array.to_list t.node_of
let mem t u = Hashtbl.mem t.index_of u

(* Structural digest of the prepared view: nodes, modules and adjacency
   (closure state excluded — it is derived). Equal views digest equally
   no matter how they were prepared, so a cache layer can assert that
   entries keyed by one access-view fingerprint were all computed
   against one and the same prepared graph. *)
let digest t =
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i u ->
      Buffer.add_string buf (string_of_int u);
      (match t.modules.(i) with
      | Some m ->
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int m)
      | None -> ());
      Buffer.add_char buf '[';
      Array.iter
        (fun j ->
          Buffer.add_string buf (string_of_int t.node_of.(j));
          Buffer.add_char buf ',')
        t.succs.(i);
      Buffer.add_char buf ']')
    t.node_of;
  Printf.sprintf "%d:%08x" t.n (Wfpriv_serial.Crc32.digest (Buffer.contents buf))

let dense_graph t = (t.node_of, t.succs)

let with_reaches t f =
  {
    t with
    reaches_override = Some f;
    closure = Atomic.make None;
    closure_lock = Mutex.create ();
  }

let succ t u =
  match Hashtbl.find_opt t.index_of u with
  | None -> []
  | Some i -> Array.to_list (Array.map (fun j -> t.node_of.(j)) t.succs.(i))

let module_of t u =
  match Hashtbl.find_opt t.index_of u with
  | None -> None
  | Some i -> t.modules.(i)

let module_pred spec pred m =
  let md = Spec.find_module spec m in
  match pred with
  | Query_ast.Any -> true
  | Query_ast.Name_matches s -> Module_def.matches md s
  | Query_ast.Module_is m' -> m = m'
  | Query_ast.Atomic_only -> md.Module_def.kind = Module_def.Atomic
  | Query_ast.Composite_only -> Module_def.is_composite md

let dense_matches t i pred =
  match t.modules.(i) with
  | Some m -> module_pred t.e_spec pred m
  | None -> pred = Query_ast.Any

let dense_matches_io t i pred =
  match (t.modules.(i), pred) with
  | None, Query_ast.Module_is m -> (
      match t.io_kind.(i) with
      | Io_input -> m = Ids.input_module
      | Io_output -> m = Ids.output_module
      | Io_none -> false)
  | _ -> dense_matches t i pred

let matching_dense t pred =
  match pred with
  | Query_ast.Module_is m -> (
      (* Indexed fast path; [dense_matches] would reject every node whose
         module differs and every io node, which is exactly the index. *)
      match Hashtbl.find_opt t.by_module m with Some l -> l | None -> [])
  | _ ->
      let acc = ref [] in
      for i = t.n - 1 downto 0 do
        if dense_matches t i pred then acc := i :: !acc
      done;
      !acc

let externalize t dense = List.map (fun i -> t.node_of.(i)) dense
let matching t pred = externalize t (matching_dense t pred)

let node_matches t u pred =
  match Hashtbl.find_opt t.index_of u with
  | None -> false
  | Some i -> dense_matches t i pred

let node_matches_io t u pred =
  match Hashtbl.find_opt t.index_of u with
  | None -> false
  | Some i -> dense_matches_io t i pred

(* ------------------------------------------------------------------ *)
(* Memoized bitset closure *)

(* Reverse topological order of the dense graph via Kahn's algorithm;
   [None] when the graph has a cycle (never a view, but stay total). *)
let rev_topo_order t =
  let indeg = Array.make t.n 0 in
  Array.iter (Array.iter (fun j -> indeg.(j) <- indeg.(j) + 1)) t.succs;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let rev_topo = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    rev_topo := i :: !rev_topo;
    Array.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      t.succs.(i)
  done;
  if !seen = t.n then Some !rev_topo else None

(* Group rows into strata by height above the sinks: stratum [k] holds
   the nodes all of whose successors live in strata [< k]. Within one
   stratum the closure rows are mutually independent — each unions only
   rows of strictly lower strata — so a stratum can be filled by several
   domains, each owning disjoint row indices, with no locking. *)
let strata_of t rev_topo =
  let height = Array.make t.n 0 in
  let max_h = ref 0 in
  List.iter
    (fun i ->
      let h =
        Array.fold_left (fun acc j -> max acc (height.(j) + 1)) 0 t.succs.(i)
      in
      height.(i) <- h;
      if h > !max_h then max_h := h)
    rev_topo;
  let counts = Array.make (!max_h + 1) 0 in
  Array.iter (fun h -> counts.(h) <- counts.(h) + 1) height;
  let strata = Array.map (fun c -> Array.make c 0) counts in
  let fill = Array.make (!max_h + 1) 0 in
  (* Ascending dense index within each stratum: deterministic layout. *)
  for i = 0 to t.n - 1 do
    let h = height.(i) in
    strata.(h).(fill.(h)) <- i;
    fill.(h) <- fill.(h) + 1
  done;
  strata

let fill_row_from_succs t rows i =
  Bitset.add rows.(i) i;
  Array.iter (fun j -> Bitset.union_into ~dst:rows.(i) rows.(j)) t.succs.(i)

(* Per-node DFS with the row itself as the visited set (cyclic fallback);
   rows are mutually independent, so this parallelizes per row. *)
let fill_row_dfs t rows i =
  let stack = ref [ i ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        if not (Bitset.mem rows.(i) u) then begin
          Bitset.add rows.(i) u;
          Array.iter (fun v -> stack := v :: !stack) t.succs.(u)
        end
  done

(* Small graphs chunk poorly and the rows fill in microseconds; below
   this node count the parallel path is pure overhead. *)
let min_parallel_nodes = 512

let compute_rows pool t =
  let rows = Array.init t.n (fun _ -> Bitset.create t.n) in
  let parallel = Pool.jobs pool > 1 && t.n >= min_parallel_nodes in
  (match rev_topo_order t with
  | Some rev_topo when not parallel ->
      (* Reverse topological order: every successor's row is complete
         before it is merged into its predecessors'. *)
      List.iter (fill_row_from_succs t rows) rev_topo
  | Some rev_topo ->
      (* Stratum-parallel sweep. The barrier at the end of each
         [parallel_for] publishes the stratum's rows to every domain
         before any higher stratum reads them. *)
      Array.iter
        (fun stratum ->
          Pool.parallel_for pool (Array.length stratum) (fun k ->
              fill_row_from_succs t rows stratum.(k)))
        (strata_of t rev_topo)
  | None when not parallel ->
      for i = 0 to t.n - 1 do
        fill_row_dfs t rows i
      done
  | None -> Pool.parallel_for pool t.n (fun i -> fill_row_dfs t rows i));
  rows

let closure_rows_with pool t =
  match Atomic.get t.closure with
  | Some rows -> rows
  | None ->
      Mutex.lock t.closure_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.closure_lock)
        (fun () ->
          match Atomic.get t.closure with
          | Some rows -> rows
          | None ->
              let rows =
                Obs.Histogram.time h_closure_ns (fun () ->
                    compute_rows pool t)
              in
              Obs.Counter.incr_op m_closure_builds;
              Obs.Counter.add_op m_closure_rows t.n;
              Atomic.set t.closure (Some rows);
              rows)

let closure_rows t = closure_rows_with (Pool.global ()) t

let materialize_closure ?pool t =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  ignore (closure_rows_with pool t)

let reachable_set t u =
  match Hashtbl.find_opt t.index_of u with
  | None -> []
  | Some i ->
      Bitset.fold (fun j acc -> t.node_of.(j) :: acc) (closure_rows t).(i) []
      |> List.rev

let reaches t u v =
  match t.reaches_override with
  | Some f -> f u v
  | None -> (
      match (Hashtbl.find_opt t.index_of u, Hashtbl.find_opt t.index_of v) with
      | Some i, Some j -> Bitset.mem (closure_rows t).(i) j
      | _ -> false)

let co_reachable_of_matches t pred =
  let dsts = matching_dense t pred in
  if dsts = [] then []
  else begin
    let rows = closure_rows t in
    let mask = Bitset.create t.n in
    List.iter (Bitset.add mask) dsts;
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      let row = Bitset.copy rows.(i) in
      Bitset.inter_into ~dst:row mask;
      if not (Bitset.is_empty row) then acc := t.node_of.(i) :: !acc
    done;
    !acc
  end

(* ------------------------------------------------------------------ *)
(* Incremental extension: appended descendants *)

(* Fill the appended region's rows. Appended edges all end in the region,
   so it is closed under successors: a local Kahn order suffices, with a
   per-row DFS fallback should the appended nodes ever form a cycle. The
   list built by prepending pops sinks first, i.e. reverse topological —
   every successor's row is complete before it is merged. *)
let fill_new_rows succs rows ~lo ~hi =
  let k = hi - lo in
  let indeg = Array.make (max k 1) 0 in
  for i = lo to hi - 1 do
    Array.iter (fun j -> indeg.(j - lo) <- indeg.(j - lo) + 1) succs.(i)
  done;
  let queue = Queue.create () in
  Array.iteri (fun d c -> if c = 0 && d < k then Queue.add (lo + d) queue) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    order := i :: !order;
    Array.iter
      (fun j ->
        let d = j - lo in
        indeg.(d) <- indeg.(d) - 1;
        if indeg.(d) = 0 then Queue.add j queue)
      succs.(i)
  done;
  if !seen = k then
    List.iter
      (fun i ->
        Bitset.add rows.(i) i;
        Array.iter (fun j -> Bitset.union_into ~dst:rows.(i) rows.(j)) succs.(i))
      !order
  else
    for i = lo to hi - 1 do
      let stack = ref [ i ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            if not (Bitset.mem rows.(i) u) then begin
              Bitset.add rows.(i) u;
              Array.iter (fun v -> stack := v :: !stack) succs.(u)
            end
      done
    done

let extend ?(carry_names = fun _ _ -> []) t ~nodes ~edges =
  if t.reaches_override <> None then
    invalid_arg "Engine.extend: engine carries a reachability override";
  let k = List.length nodes in
  let n' = t.n + k in
  let node_of = Array.append t.node_of (Array.of_list (List.map fst nodes)) in
  let index_of = Hashtbl.copy t.index_of in
  List.iteri
    (fun i (u, _) ->
      if Hashtbl.mem index_of u then
        invalid_arg "Engine.extend: node id already present";
      Hashtbl.replace index_of u (t.n + i))
    nodes;
  let dense_edges =
    List.map
      (fun (u, v) ->
        let dense w =
          match Hashtbl.find_opt index_of w with
          | Some i -> i
          | None -> invalid_arg "Engine.extend: edge endpoint unknown"
        in
        let i = dense u and j = dense v in
        if j < t.n then invalid_arg "Engine.extend: edge into the frozen region";
        (i, j))
      edges
  in
  let extra = Array.make (max n' 1) [] in
  List.iter
    (fun (i, j) ->
      if not (List.mem j extra.(i)) then extra.(i) <- j :: extra.(i))
    dense_edges;
  let succs =
    Array.init n' (fun i ->
        let old = if i < t.n then t.succs.(i) else [||] in
        match extra.(i) with
        | [] -> old
        | js ->
            (* Old targets are all [< t.n] and ascending; appended targets
               all [>= t.n] — appending the sorted new ones keeps the
               successor array ascending. *)
            Array.append old (Array.of_list (List.sort compare js)))
  in
  let carries =
    lazy
      (let carries = Hashtbl.copy (Lazy.force t.carries) in
       List.iter
         (fun (i, j) ->
           match carry_names node_of.(i) node_of.(j) with
           | [] -> ()
           | names -> Hashtbl.replace carries (i, j) names)
         dense_edges;
       carries)
  in
  (* Incremental closure maintenance. Appended edges only ever point into
     the appended region (descendants), so an existing closed row can
     only gain members of the new range — it is never invalidated. Widen
     every old row, fill the appended rows, then sweep the old region in
     reverse topological order unioning the (complete) rows of dirty
     successors: only ancestors of an attach point are touched. *)
  let closure =
    match Atomic.get t.closure with
    | None -> Atomic.make None
    | Some rows -> (
        match rev_topo_order t with
        | None ->
            (* Cyclic frozen region (never a view): recompute on demand. *)
            Atomic.make None
        | Some old_rev_topo ->
            let rows' =
              Array.init n' (fun i ->
                  if i < t.n then Bitset.widen rows.(i) n'
                  else Bitset.create n')
            in
            fill_new_rows succs rows' ~lo:t.n ~hi:n';
            let dirty = Array.make (max n' 1) false in
            for i = t.n to n' - 1 do
              dirty.(i) <- true
            done;
            List.iter
              (fun i ->
                let touched = ref false in
                Array.iter
                  (fun j ->
                    if dirty.(j) then begin
                      Bitset.union_into ~dst:rows'.(i) rows'.(j);
                      touched := true
                    end)
                  succs.(i);
                if !touched then dirty.(i) <- true)
              old_rev_topo;
            Obs.Counter.add_op m_extend_rows k;
            Atomic.make (Some rows'))
  in
  Obs.Counter.incr_op m_extends;
  let modules' = Array.append t.modules (Array.of_list (List.map snd nodes)) in
  {
    e_spec = t.e_spec;
    hierarchy = t.hierarchy;
    n = n';
    node_of;
    index_of;
    succs;
    modules = modules';
    by_module = index_modules modules';
    io_kind = Array.append t.io_kind (Array.make (max k 0) Io_none);
    carries;
    reaches_override = None;
    closure;
    closure_lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Plan execution *)

let pair_nodes pairs =
  List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) pairs)

let rec eval t trace plan =
  let record w =
    (match trace with Some acc -> acc := (plan, w.nodes) :: !acc | None -> ());
    w
  in
  match plan with
  | Plan.Node_scan p ->
      let ns = matching t p in
      record { holds = ns <> []; nodes = ns }
  | Plan.Edge_join (pa, pb, carry) ->
      let pairs = ref [] in
      List.iter
        (fun i ->
          Array.iter
            (fun j ->
              let ok_carry =
                match carry with
                | None -> true
                | Some d -> (
                    match Hashtbl.find_opt (Lazy.force t.carries) (i, j) with
                    | Some names -> List.mem d names
                    | None -> false)
              in
              if ok_carry && dense_matches t j pb then
                pairs := (t.node_of.(i), t.node_of.(j)) :: !pairs)
            t.succs.(i))
        (matching_dense t pa);
      record { holds = !pairs <> []; nodes = pair_nodes !pairs }
  | Plan.Reach_join (pa, pb) ->
      let srcs = matching_dense t pa and dsts = matching_dense t pb in
      if srcs = [] || dsts = [] then record { holds = false; nodes = [] }
      else begin
        match t.reaches_override with
        | Some f ->
            let pairs =
              List.concat_map
                (fun i ->
                  List.filter_map
                    (fun j ->
                      if i <> j && f t.node_of.(i) t.node_of.(j) then
                        Some (t.node_of.(i), t.node_of.(j))
                      else None)
                    dsts)
                srcs
            in
            record { holds = pairs <> []; nodes = pair_nodes pairs }
        | None ->
            let rows = closure_rows t in
            let dst_mask = Bitset.create t.n in
            List.iter (Bitset.add dst_mask) dsts;
            let hit_dsts = Bitset.create t.n in
            let hit_srcs = ref [] in
            List.iter
              (fun i ->
                let row = Bitset.copy rows.(i) in
                Bitset.inter_into ~dst:row dst_mask;
                Bitset.remove row i;
                (* strict: a node does not precede itself *)
                if not (Bitset.is_empty row) then begin
                  hit_srcs := t.node_of.(i) :: !hit_srcs;
                  Bitset.union_into ~dst:hit_dsts row
                end)
              srcs;
            let ns =
              Bitset.fold
                (fun j acc -> t.node_of.(j) :: acc)
                hit_dsts !hit_srcs
              |> List.sort_uniq compare
            in
            record { holds = !hit_srcs <> []; nodes = ns }
      end
  | Plan.Inside_scan (p, w) -> (
      match Hierarchy.descendants (Lazy.force t.hierarchy) w with
      | exception Not_found -> record { holds = false; nodes = [] }
      | desc ->
          let inside =
            List.filter_map
              (fun i ->
                match t.modules.(i) with
                | Some m when List.mem (Spec.owner t.e_spec m) desc ->
                    Some t.node_of.(i)
                | _ -> None)
              (matching_dense t p)
          in
          record { holds = inside <> []; nodes = inside })
  | Plan.Refine_join (pa, pb) ->
      let hierarchy = Lazy.force t.hierarchy in
      let asrc =
        List.filter
          (fun i ->
            match t.modules.(i) with
            | Some m -> Module_def.is_composite (Spec.find_module t.e_spec m)
            | None -> false)
          (matching_dense t pa)
      in
      let pairs = ref [] in
      List.iter
        (fun i ->
          match t.modules.(i) with
          | None -> ()
          | Some m -> (
              match Module_def.expansion (Spec.find_module t.e_spec m) with
              | None -> ()
              | Some w ->
                  let desc = Hierarchy.descendants hierarchy w in
                  for j = t.n - 1 downto 0 do
                    match t.modules.(j) with
                    | Some mb
                      when module_pred t.e_spec pb mb
                           && List.mem (Spec.owner t.e_spec mb) desc ->
                        pairs := (t.node_of.(i), t.node_of.(j)) :: !pairs
                    | _ -> ()
                  done))
        asrc;
      record { holds = !pairs <> []; nodes = pair_nodes !pairs }
  | Plan.Guarded_and (a, b) ->
      let wa = eval t trace a in
      if not wa.holds then record { holds = false; nodes = [] }
      else begin
        let wb = eval t trace b in
        if wb.holds then
          record
            {
              holds = true;
              nodes = List.sort_uniq compare (wa.nodes @ wb.nodes);
            }
        else record { holds = false; nodes = [] }
      end
  | Plan.Union (a, b) ->
      let wa = eval t trace a in
      if wa.holds then record wa else record (eval t trace b)
  | Plan.Complement a ->
      let wa = eval t trace a in
      record { holds = not wa.holds; nodes = [] }

let run t plan =
  let w = eval t None plan in
  Obs.Counter.incr_op m_runs;
  Obs.Counter.add_op m_rows (List.length w.nodes);
  w

let compile q = Obs.Histogram.time h_compile_ns (fun () -> Plan.compile q)
let run_query t q = run t (compile q)

let run_trace t plan =
  let acc = ref [] in
  let w = eval t (Some acc) plan in
  (w, List.rev !acc)

(* ------------------------------------------------------------------ *)
(* Batched evaluation *)

let rec plan_needs_closure = function
  | Plan.Reach_join _ -> true
  | Plan.Guarded_and (a, b) | Plan.Union (a, b) ->
      plan_needs_closure a || plan_needs_closure b
  | Plan.Complement a -> plan_needs_closure a
  | Plan.Node_scan _ | Plan.Edge_join _ | Plan.Inside_scan _
  | Plan.Refine_join _ ->
      false

let rec plan_needs_carries = function
  | Plan.Edge_join (_, _, Some _) -> true
  | Plan.Guarded_and (a, b) | Plan.Union (a, b) ->
      plan_needs_carries a || plan_needs_carries b
  | Plan.Complement a -> plan_needs_carries a
  | Plan.Node_scan _ | Plan.Edge_join (_, _, None) | Plan.Reach_join _
  | Plan.Inside_scan _ | Plan.Refine_join _ ->
      false

let run_batch ?pool t plans =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  Obs.Trace.with_span "engine.run_batch"
    ~attrs:(fun () ->
      [
        ("plans", string_of_int (List.length plans));
        ("nodes", string_of_int t.n);
      ])
    (fun () ->
      (* Freeze the two lazily-materialized pieces of the prepared view
         before fanning out, so every domain only ever reads them: the
         hierarchy (Lazy is not safe to force concurrently) and the
         closure (published once, under the lock). *)
      ignore (Lazy.force t.hierarchy);
      if List.exists plan_needs_carries plans then
        ignore (Lazy.force t.carries);
      if t.reaches_override = None && List.exists plan_needs_closure plans
      then ignore (closure_rows_with pool t);
      let ws =
        match t.reaches_override with
        | Some _ ->
            (* An external reachability oracle may memoize internally
               (e.g. a Reach_cache); without a thread-safety contract on
               it, evaluate in the caller's domain. Answers are identical
               either way. *)
            List.map (fun p -> eval t None p) plans
        | None ->
            Pool.parallel_map_list ~chunk:1 pool (fun p -> eval t None p)
              plans
      in
      (* Recorded after the join, in the caller's domain, so worker
         domains never touch the registry. *)
      Obs.Counter.incr_op m_batches;
      Obs.Counter.add_op m_batch_plans (List.length plans);
      List.iter
        (fun w -> Obs.Counter.add_op m_rows (List.length w.nodes))
        ws;
      ws)

let rec run_search ~lookup = function
  | Plan.Keyword_lookup kws -> lookup kws
  | Plan.Rank s -> Ranking.rank (run_search ~lookup s)
  | Plan.Quantize (w, s) -> Ranking.quantize ~width:w (run_search ~lookup s)
  | Plan.Project_top (k, s) -> Ranking.top_k k (run_search ~lookup s)

let run_search_indexed ~index ~level plan =
  match plan with
  | Plan.Project_top (k, Plan.Rank (Plan.Keyword_lookup kws)) ->
      (* The canonical top-k pipeline short-circuits into block-max WAND
         — same floats, same tie-break, early termination. Quantized
         pipelines fall through: bucketing changes tie behaviour, so
         they must rank the exhaustive scores. *)
      Index.top_k index ~level ~k kws
  | plan ->
      run_search ~lookup:(fun kws -> Index.score_entries index ~level kws) plan

let run_searches ?pool ~index ~level plans =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* The index is immutable after build and cursors are per-call, so
     search pipelines fan out like query plans; counters are atomic. *)
  Pool.parallel_map_list ~chunk:1 pool (run_search_indexed ~index ~level) plans

let run_search_live ~view ~level plan =
  match plan with
  | Plan.Project_top (k, Plan.Rank (Plan.Keyword_lookup kws)) ->
      (* Same canonical-pipeline dispatch as {!run_search_indexed}; the
         LSM view's top-k equals the frozen index's by construction. *)
      Live_index.top_k view ~level ~k kws
  | plan ->
      run_search
        ~lookup:(fun kws -> Live_index.score_entries view ~level kws)
        plan

let run_searches_live ?pool ~view ~level plans =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* A pinned view is immutable (snapshot isolation), so search pipelines
     fan out exactly like the frozen-index batch. *)
  Pool.parallel_map_list ~chunk:1 pool (run_search_live ~view ~level) plans
