open Wfpriv_workflow
open Wfpriv_privacy
module Pool = Wfpriv_parallel.Pool
module Obs = Wfpriv_obs

(* Seals and merges are operator work (build-side, like index.builds);
   view-side reads record through the underlying Index counters at the
   caller's level, so the observer partitioning is unchanged. *)
let m_seals = Obs.Registry.counter "live_index.seals"
let m_merges = Obs.Registry.counter "live_index.merges"

type entry = string * Spec.t * Privilege.t

(* A sealed segment: an immutable PR 5 index over a contiguous slice of
   the entry stream, kept with its source entries so merges rebuild from
   the originals (identical blocks to a from-scratch build). *)
type segment = { sg_index : Index.t; sg_entries : entry list }

type view = {
  v_entries : entry list;  (* insertion order *)
  v_sources : Index.t list;  (* oldest first; doc sets disjoint *)
}

type t = {
  seal_threshold : int;
  fanout : int;
  mutable segs : segment list;  (* oldest first *)
  mutable tail : entry list;  (* memtable, newest first *)
  mutable tail_n : int;
  names : (string, unit) Hashtbl.t;
  mutable cached : view option;
}

let default_seal_threshold = 8
let default_fanout = 4

let create ?(seal_threshold = default_seal_threshold)
    ?(fanout = default_fanout) () =
  if seal_threshold < 1 then
    invalid_arg "Live_index.create: seal_threshold < 1";
  if fanout < 2 then invalid_arg "Live_index.create: fanout < 2";
  {
    seal_threshold;
    fanout;
    segs = [];
    tail = [];
    tail_n = 0;
    names = Hashtbl.create 64;
    cached = None;
  }

let segments t = List.length t.segs
let memtable_size t = t.tail_n
let pending_merges t = max 0 (List.length t.segs - t.fanout)

let seal ?pool t =
  if t.tail_n > 0 then begin
    let es = List.rev t.tail in
    let sg = { sg_index = Index.build ?pool es; sg_entries = es } in
    t.segs <- t.segs @ [ sg ];
    t.tail <- [];
    t.tail_n <- 0;
    t.cached <- None;
    Obs.Counter.incr_op m_seals
  end

let add ?pool t ((name, _, _) as e) =
  if Hashtbl.mem t.names name then
    invalid_arg ("Live_index.add: duplicate entry name " ^ name);
  Hashtbl.replace t.names name ();
  t.tail <- e :: t.tail;
  t.tail_n <- t.tail_n + 1;
  t.cached <- None;
  if t.tail_n >= t.seal_threshold then seal ?pool t

let of_entries ?pool ?seal_threshold ?fanout es =
  let t = create ?seal_threshold ?fanout () in
  List.iter (add ?pool t) es;
  t

let m_erases = Obs.Registry.counter "live_index.erases"

let erase ?pool t name =
  if not (Hashtbl.mem t.names name) then false
  else begin
    Hashtbl.remove t.names name;
    let keep (n, _, _) = not (String.equal n name) in
    if not (List.for_all keep t.tail) then begin
      t.tail <- List.filter keep t.tail;
      t.tail_n <- List.length t.tail
    end;
    (* Rewrite (only) the sealed segment holding the entry from its
       surviving source entries — identical blocks to a from-scratch
       build over the survivors, so the erased name is absent from the
       posting bytes, not merely tombstoned. An emptied segment is
       dropped. *)
    t.segs <-
      List.filter_map
        (fun sg ->
          if List.for_all keep sg.sg_entries then Some sg
          else
            match List.filter keep sg.sg_entries with
            | [] -> None
            | es -> Some { sg_index = Index.build ?pool es; sg_entries = es })
        t.segs;
    t.cached <- None;
    Obs.Counter.incr_op m_erases;
    true
  end

let maintain ?pool t =
  if pending_merges t = 0 then false
  else
    match t.segs with
    | a :: b :: rest ->
        (* Merge the two oldest adjacent segments: entry order within the
           merged segment is stream order, so a view's entry list stays
           the insertion order whatever the merge history. *)
        let es = a.sg_entries @ b.sg_entries in
        let sg = { sg_index = Index.build ?pool es; sg_entries = es } in
        t.segs <- sg :: rest;
        t.cached <- None;
        Obs.Counter.incr_op m_merges;
        true
    | _ -> false

let snapshot ?pool t =
  match t.cached with
  | Some v -> v
  | None ->
      let entries =
        List.concat_map (fun s -> s.sg_entries) t.segs @ List.rev t.tail
      in
      let sources =
        List.map (fun s -> s.sg_index) t.segs
        @
        if t.tail_n = 0 then []
        else [ Index.build ?pool (List.rev t.tail) ]
      in
      let v = { v_entries = entries; v_sources = sources } in
      t.cached <- Some v;
      v

(* {2 View-side queries}

   Doc sets are disjoint across sources (one entry lives in exactly one
   segment or the memtable), so global statistics are sums and merged
   result lists interleave without collisions. *)

let entries v = v.v_entries
let nb_sources v = List.length v.v_sources

let doc_count v =
  List.fold_left (fun acc ix -> acc + Index.doc_count ix) 0 v.v_sources

let df v ~level term =
  List.fold_left (fun acc ix -> acc + Index.df ix ~level term) 0 v.v_sources

let idf v ~level term = Tfidf.idf_for ~n:(doc_count v) ~df:(df v ~level term)

let weighted v ~level terms =
  let n = doc_count v in
  List.map
    (fun (term, mult) ->
      (term, float_of_int mult *. Tfidf.idf_for ~n ~df:(df v ~level term)))
    (Index.query_terms terms)

let merge_ranked a b =
  List.merge
    (fun (x : Ranking.entry) (y : Ranking.entry) ->
      String.compare x.doc y.doc)
    a b

let score_entries v ~level terms =
  (* Weight once from global statistics, score each source exhaustively
     with those weights, merge by doc name: same floats and same doc
     order as a frozen single-index build of the whole view. *)
  let wt = weighted v ~level terms in
  List.fold_left
    (fun acc ix -> merge_ranked acc (Index.score_entries_weighted ix ~level wt))
    [] v.v_sources

let top_k v ~level ~k terms =
  match v.v_sources with
  | [ ix ] ->
      (* Single source: its local statistics are the globals, so the
         block-max WAND path applies unchanged. *)
      Index.top_k ix ~level ~k terms
  | _ -> Ranking.top_k k (score_entries v ~level terms)

let posting_compare (a : Index.posting) (b : Index.posting) =
  compare
    (a.Index.doc, a.Index.module_id, a.Index.min_level)
    (b.Index.doc, b.Index.module_id, b.Index.min_level)

let lookup v ~level term =
  List.fold_left
    (fun acc ix -> List.merge posting_compare acc (Index.lookup ix ~level term))
    [] v.v_sources

let matching_docs v ~level terms =
  if terms = [] then []
  else
    List.fold_left
      (fun acc ix ->
        List.merge String.compare acc (Index.matching_docs ix ~level terms))
      [] v.v_sources

let to_index ?pool v = Index.build ?pool v.v_entries
