(** Ranking, and ranking as a privacy leak (paper Sec. 4).

    "A highly ranked result is likely to have more occurrences of an
    input keyword ... a user might be able to infer the range of value
    occurrences in a result even though s/he is unable to see the
    values." This module provides ordinary ranking, the inference attack
    that quantifies the leak, and the privacy-aware counter-measure the
    paper calls for: score quantisation, which coarsens what rank
    positions reveal.

    Attack model for {!infer_masked_tf} (experiment E7): a query term's
    occurrences are masked inside one target document, but the adversary
    knows every document's score contribution from visible terms
    ([base]), the masked term's IDF, and the published ranking. The
    target's score is [base + tf * idf] with [tf ∈ {0..max_tf}] unknown;
    every published comparison ["target outranks d"] / ["d outranks
    target"] bounds [tf] from below/above. The returned interval is what
    the adversary cannot rule out — smaller interval, bigger leak. *)

type entry = { doc : string; score : float }

val rank : entry list -> entry list
(** Descending score, ties broken by ascending doc id (deterministic). *)

val top_k : int -> entry list -> entry list

val position : entry list -> string -> int option
(** 0-based rank of a document in a ranked list. *)

val quantize : width:float -> entry list -> entry list
(** Scores floored to multiples of [width] (privacy-aware ranking) —
    floored also for negative scores, not truncated toward zero;
    [width <= 0] raises [Invalid_argument]. *)

(** {2 Block-max WAND early termination}

    The ranker reads postings only through this cursor, one per query
    term: {!wand_cursor.wc_ub} bounds any document's contribution,
    [wc_block_max]/[wc_block_last] bound the current compressed block
    without decoding it, [wc_cur]/[wc_score] give exact positions and
    contributions. Because the index builds every field from the
    partitions at levels [<= l] of a level-[l] caller, each pruning
    decision of {!top_k_wand} is a pure function of postings the caller
    may see — early termination cannot leak hidden postings through
    work counts (the leakage suite pins this on the [Obs] counters). *)
type wand_cursor = {
  wc_ub : float;  (** static upper bound on any doc's contribution *)
  wc_lb : unit -> int;
      (** lower bound on the current doc, [max_int] when exhausted;
          must not decode *)
  wc_block_max : unit -> float;
      (** contribution bound over the current block; must not decode *)
  wc_block_last : unit -> int;  (** last doc that bound covers *)
  wc_cur : unit -> int;  (** exact current doc (may decode) *)
  wc_score : int -> float;
      (** seek to the doc and return its contribution, [0.] if absent *)
  wc_seek : int -> unit;  (** advance to the first doc [>= target] *)
  wc_next : int -> unit;  (** advance past the doc if positioned on it *)
}

val top_k_wand : k:int -> doc:(int -> string) -> wand_cursor list -> entry list
(** The top [k] (score desc, doc asc) entries, exactly as
    [top_k k] over the exhaustively scored corpus — same floats (the
    contribution sum runs over every cursor in query order for each
    evaluated doc), same deterministic tie-break — but skipping blocks
    whose bounds cannot beat the current k-th entry. [doc] renders doc
    ids (id order must equal name order, {!Symtab}'s contract). *)

type interval = { lo : int; hi : int }
(** Inclusive bounds on the masked term frequency. *)

val width : interval -> int
(** [hi - lo + 1]: the number of candidate frequencies left. *)

val infer_masked_tf :
  target_base:float ->
  others:(string * float) list ->
  idf:float ->
  max_tf:int ->
  ranking:string list ->
  target:string ->
  interval
(** [others] are the fully-known scores of the other documents;
    [ranking] is the published order (doc ids, best first) and must
    mention [target]. Raises [Invalid_argument] on inconsistent input
    (target missing, [max_tf < 0], [idf <= 0]). The interval is clamped
    to [0, max_tf]; an empty feasible set (cannot happen for rankings
    actually produced by {!rank}) returns [{lo=0; hi=max_tf}]. *)

val infer_masked_tf_quantized :
  bucket_width:float ->
  target_base:float ->
  others:(string * float) list ->
  idf:float ->
  max_tf:int ->
  ranking:string list ->
  target:string ->
  interval
(** Same attack against a ranking published from quantised scores: order
    constraints only bound the {e buckets}, so the interval is wider —
    the counter-measure's effect, measured in E7. *)
