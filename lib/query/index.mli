(** Privacy-partitioned keyword index (paper Sec. 4: "manage an index with
    different user views ... advanced data structures that classify and
    group their elements based on privacy settings").

    Instead of materialising one index per privilege level (high space
    overhead, the paper's strawman), a single inverted index partitions
    each term's postings by the minimum privilege level at which the
    posting's module is visible: per term, one sorted posting array per
    level, partitions in ascending level order. A lookup at level [l]
    merges exactly the partitions with level [<= l] — sorted-array
    merges, and postings above the caller's level are never touched.
    {!build_per_level} materialises the strawman for comparison (E6). *)

type posting = {
  doc : string;  (** repository entry name *)
  module_id : Wfpriv_workflow.Ids.module_id;
  min_level : Wfpriv_privacy.Privilege.level;
}

type t

val build :
  ?pool:Wfpriv_parallel.Pool.t ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  t
(** One entry per repository workflow: name, spec, and its expansion-level
    assignment. Every term of every module (including I/O pseudo-modules)
    is indexed. Raises [Invalid_argument] on duplicate names.

    With a pool of more than one domain, posting extraction runs
    per-entry in parallel and the sort-and-group step is sharded by
    token hash across domains, merged with a disjoint-key map union in
    shard order — the built index is identical to the sequential one
    (all postings of a term land in one shard, so every term's posting
    list is sorted from exactly the same inputs). Defaults to the global
    pool (sequential unless [WFPRIV_JOBS] is set). *)

val lookup : t -> level:Wfpriv_privacy.Privilege.level -> string -> posting list
(** Postings for a term visible at the level, sorted by (doc, module). *)

val nb_terms : t -> int
val nb_postings : t -> int

(** {2 Baselines for experiment E6} *)

type per_level
(** One full index per privilege level (the space-hungry alternative). *)

val build_per_level :
  levels:Wfpriv_privacy.Privilege.level list ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  per_level

val lookup_per_level :
  per_level -> level:Wfpriv_privacy.Privilege.level -> string -> posting list
(** Uses the index of the largest materialised level [<= level]; raises
    [Invalid_argument] when none exists. *)

val per_level_postings : per_level -> int
(** Total postings across all materialised indexes (space proxy). *)

val lookup_scan :
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  level:Wfpriv_privacy.Privilege.level ->
  string ->
  posting list
(** Index-free full scan (the no-index baseline). *)
