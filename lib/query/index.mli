(** Privacy-partitioned keyword index (paper Sec. 4: "manage an index with
    different user views ... advanced data structures that classify and
    group their elements based on privacy settings").

    Instead of materialising one index per privilege level (high space
    overhead, the paper's strawman), a single inverted index partitions
    each term's postings by the minimum privilege level at which the
    posting's module is visible. The representation is succinct: doc
    names intern into dense ids ({!Symtab}, id order = name order) and
    each (term, level) partition is a delta-compressed block sequence
    with skip pointers and block maxima ({!Postings}). A lookup at
    level [l] decodes exactly the partitions with level [<= l] — and
    postings above the caller's level are never touched, timed, or
    counted. {!build_per_level} materialises the strawman for
    comparison (E6).

    On top of plain lookups the compressed layout carries a streaming
    {!cursor} API, galloping conjunctive intersection
    ({!matching_docs}) and block-max WAND ranking ({!top_k}), whose
    early termination is leakage-safe: every bound it prunes with is
    computed per level-partition from levels [<= l] plus the public doc
    count, so the pruning (and the observer-visible decode/skip
    counters) of a level-[l] caller is a pure function of what that
    caller may see. *)

type posting = {
  doc : string;  (** repository entry name *)
  module_id : Wfpriv_workflow.Ids.module_id;
  min_level : Wfpriv_privacy.Privilege.level;
}

type t

val build :
  ?pool:Wfpriv_parallel.Pool.t ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  t
(** One entry per repository workflow: name, spec, and its expansion-level
    assignment. Every term of every module (including I/O pseudo-modules)
    is indexed. Raises [Invalid_argument] on duplicate names.

    With a pool of more than one domain, posting extraction runs
    per-entry in parallel and block encoding is sharded by token hash
    across domains, merged with a disjoint-key map union in shard order
    — the built index is identical to the sequential one (all postings
    of a term land in one shard, so every partition is encoded from
    exactly the same inputs). Defaults to the global pool (sequential
    unless [WFPRIV_JOBS] is set). *)

val build_postings : ?pool:Wfpriv_parallel.Pool.t -> (string * posting) list -> t
(** Build from raw (term, posting) pairs — the constructor behind
    {!build}, exposed for random-corpus tests and benches. Duplicate
    pairs are frequencies; the doc universe is the set of posting doc
    names. *)

val lookup : t -> level:Wfpriv_privacy.Privilege.level -> string -> posting list
(** Postings for a term visible at the level, sorted by (doc, module);
    a frequency-[f] posting appears [f] times, exactly as
    {!lookup_scan} reports it. *)

val nb_terms : t -> int
val nb_postings : t -> int
val doc_count : t -> int
val encoded_bytes : t -> int
(** Total compressed payload bytes across all partitions. *)

type level_stat = {
  stat_level : Wfpriv_privacy.Privilege.level;
  stat_partitions : int;
  stat_postings : int;
  stat_bytes : int;
}

val level_stats : t -> level_stat list
(** Per privilege level, ascending: partition count, postings and
    encoded bytes — the [wfpriv index-stats] report. *)

(** {2 Scoring and ranking}

    TF/IDF with the corpus convention ({!Tfidf.idf_for}): the query's
    distinct terms in first-occurrence order, weighted by multiplicity
    times IDF; a doc scores the sum of weight times its total frequency
    at partitions [<= level]. [df] at a level is precomputed per
    partition at build time (cumulative distinct docs), [n] is the
    public doc count. *)

val df : t -> level:Wfpriv_privacy.Privilege.level -> string -> int
val idf : t -> level:Wfpriv_privacy.Privilege.level -> string -> float

val query_terms : string list -> (string * int) list
(** The query's distinct terms (lowercased) in first-occurrence order,
    each with its multiplicity — the shared front half of the scoring
    model, exposed so a segmented view ({!Live_index}) can weight terms
    once against global corpus statistics. *)

val score_entries_weighted :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  (string * float) list ->
  Ranking.entry list
(** {!score_entries} against caller-supplied (term, weight) pairs instead
    of this index's own IDF: with weights computed from global corpus
    statistics, per-segment scores add up bit-identically to a frozen
    single-index build (same term order, same integer tf sums, same float
    operations per doc). *)

val score_entries :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string list ->
  Ranking.entry list
(** Exhaustive: every doc with at least one query-term posting visible
    at the level, in doc order — feed {!Ranking.rank} / {!Ranking.top_k}
    for the reference ranking. *)

val top_k :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  k:int ->
  string list ->
  Ranking.entry list
(** Block-max WAND ({!Ranking.top_k_wand}): exactly
    [Ranking.top_k k (score_entries t ~level terms)] — same floats, same
    tie-break — skipping blocks whose bounds cannot reach the current
    k-th entry. All bounds come from partitions [<= level]. *)

val top_k_weighted :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  k:int ->
  (string * float) list ->
  Ranking.entry list
(** {!top_k} against caller-supplied (term, weight) pairs instead of
    this index's own IDF — the per-shard half of a sharded global merge:
    with weights computed from global corpus statistics (summed df, doc
    counts), each shard's WAND produces exactly the floats the unsharded
    index would assign its docs ({!score_entries_weighted}'s argument,
    lifted to the ranked path). *)

val max_score :
  t -> level:Wfpriv_privacy.Privilege.level -> (string * float) list -> float
(** Upper bound on any single doc's score at the level for the weighted
    terms: sum of weight times the term's global maximum aggregated
    frequency over partitions [<= level]. Decodes nothing (partition
    metadata only) and reads only what the level may see, so a
    cross-shard merge may prune a whole shard on it without its decision
    — or the observer-visible decode/skip counters — depending on hidden
    postings. Conservative under float rounding (monotone products and
    sums, accumulated in term order). *)

(** {2 Streaming cursors} *)

type cursor
(** One term's postings at one level, streamed doc-at-a-time with
    frequencies aggregated over the doc's modules and partitions. *)

val cursor : t -> level:Wfpriv_privacy.Privilege.level -> string -> cursor
val cursor_next : cursor -> (string * int) option
(** Next (doc, total frequency), ascending by doc; [None] when
    exhausted. *)

val matching_docs :
  t -> level:Wfpriv_privacy.Privilege.level -> string list -> string list
(** Docs containing {e every} term at the level, ascending — a galloping
    skip-based conjunctive intersection over compressed cursors. Empty
    for an empty term list. *)

(** {2 Baselines for experiment E6} *)

type per_level
(** One full index per privilege level (the space-hungry alternative). *)

val build_per_level :
  levels:Wfpriv_privacy.Privilege.level list ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  per_level

val lookup_per_level :
  per_level -> level:Wfpriv_privacy.Privilege.level -> string -> posting list
(** Uses the index of the largest materialised level [<= level]; raises
    [Invalid_argument] when none exists. *)

val per_level_postings : per_level -> int
(** Total postings across all materialised indexes (space proxy). *)

val lookup_scan :
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list ->
  level:Wfpriv_privacy.Privilege.level ->
  string ->
  posting list
(** Index-free full scan (the no-index baseline). *)
