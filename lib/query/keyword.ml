open Wfpriv_workflow

type match_info = {
  keyword : string;
  witnesses : Ids.module_id list;
  all_matches : Ids.module_id list;
}

type answer = { view : View.t; matches : match_info list }

(* Workflows that must be expanded for a module to be visible: the
   ancestor chain of its owner. *)
let chain spec hierarchy m = Hierarchy.module_path spec hierarchy m

let union_sorted lists = List.sort_uniq compare (List.concat lists)

(* Exact minimal witness choice: one candidate per keyword minimising
   (#expanded workflows, #visible modules). DFS over the candidate
   product with branch-and-bound on prefix size; candidate products are
   capped — callers with huge match sets get the greedy path. *)
let minimal_choice spec hierarchy candidates_per_kw =
  let product_size =
    List.fold_left
      (fun acc c -> if acc > 100_000 then acc else acc * List.length c)
      1 candidates_per_kw
  in
  if product_size <= 20_000 then begin
    let best = ref None in
    let rec go chosen prefix = function
      | [] ->
          let size = List.length prefix in
          let better =
            match !best with
            | None -> true
            | Some (s, _, _) -> size < s
          in
          if better then best := Some (size, List.rev chosen, prefix)
      | cands :: rest ->
          List.iter
            (fun m ->
              let prefix' = union_sorted [ prefix; chain spec hierarchy m ] in
              (* Bound: prefix only grows along the branch. *)
              let keep =
                match !best with
                | Some (s, _, _) -> List.length prefix' < s
                | None -> true
              in
              if keep then go (m :: chosen) prefix' rest)
            cands
    in
    go [] [ Spec.root spec ] candidates_per_kw;
    Option.map (fun (_, chosen, prefix) -> (chosen, prefix)) !best
  end
  else begin
    (* Greedy: per keyword, pick the candidate adding the fewest new
       workflows to the running prefix. The prefix lives in a Set while
       the scan runs — [cost] is a membership test per chain element
       instead of a List.mem over an ever-growing list, and the union
       per step is a fold instead of a sort of the concatenation. The
       sorted-list output (Set.elements) is what union_sorted built. *)
    let module Sset = Set.Make (String) in
    let prefix = ref (Sset.singleton (Spec.root spec)) in
    let chosen =
      List.map
        (fun cands ->
          let cost m =
            let added =
              List.filter
                (fun w -> not (Sset.mem w !prefix))
                (chain spec hierarchy m)
            in
            (List.length added, m)
          in
          let best =
            List.fold_left
              (fun acc m -> if cost m < cost acc then m else acc)
              (List.hd cands) (List.tl cands)
          in
          prefix :=
            List.fold_left
              (fun s w -> Sset.add w s)
              !prefix
              (chain spec hierarchy best);
          best)
        candidates_per_kw
    in
    Some (chosen, Sset.elements !prefix)
  end

let search ?(strategy = `Minimal) ?(restrict_to = fun _ -> true) spec keywords =
  if keywords = [] then invalid_arg "Keyword.search: empty keyword list";
  let hierarchy = Hierarchy.of_spec spec in
  (* Candidate enumeration runs on the module-universe engine: every
     module (composites included — a collapsed composite can witness a
     keyword, Fig. 5) matched through one prepared scan. *)
  let engine = Engine.of_spec spec in
  let all_matches kw =
    List.filter restrict_to
      (Engine.matching engine (Query_ast.Name_matches kw))
  in
  let per_kw = List.map (fun kw -> (kw, all_matches kw)) keywords in
  if List.exists (fun (_, ms) -> ms = []) per_kw then None
  else begin
    let result =
      match strategy with
      | `Minimal -> (
          match minimal_choice spec hierarchy (List.map snd per_kw) with
          | Some (chosen, prefix) ->
              Some (List.map (fun m -> [ m ]) chosen, prefix)
          | None -> None)
      | `Specific ->
          (* Deepest matches per keyword; all their chains expanded. *)
          let witnesses =
            List.map
              (fun (_, ms) ->
                let depth m = Hierarchy.depth hierarchy (Spec.owner spec m) in
                let dmax = List.fold_left (fun a m -> max a (depth m)) 0 ms in
                List.filter (fun m -> depth m = dmax) ms)
              per_kw
          in
          let prefix =
            union_sorted
              ([ Spec.root spec ]
              :: List.concat_map
                   (fun ws -> List.map (chain spec hierarchy) ws)
                   witnesses)
          in
          Some (witnesses, prefix)
    in
    match result with
    | None -> None
    | Some (witness_sets, prefix) ->
        let view = View.of_prefix spec prefix in
        let matches =
          List.map2
            (fun (kw, ms) ws ->
              { keyword = kw; witnesses = List.sort compare ws; all_matches = ms })
            per_kw witness_sets
        in
        Some { view; matches }
  end

let answer_modules a = View.visible_modules a.view
