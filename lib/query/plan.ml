type t =
  | Node_scan of Query_ast.node_pred
  | Edge_join of Query_ast.node_pred * Query_ast.node_pred * string option
  | Reach_join of Query_ast.node_pred * Query_ast.node_pred
  | Inside_scan of Query_ast.node_pred * Wfpriv_workflow.Ids.workflow_id
  | Refine_join of Query_ast.node_pred * Query_ast.node_pred
  | Guarded_and of t * t
  | Union of t * t
  | Complement of t

let rec compile = function
  | Query_ast.Node p -> Node_scan p
  | Query_ast.Edge (a, b) -> Edge_join (a, b, None)
  | Query_ast.Carries (a, b, data) -> Edge_join (a, b, Some data)
  | Query_ast.Before (a, b) -> Reach_join (a, b)
  | Query_ast.Inside (p, w) -> Inside_scan (p, w)
  | Query_ast.Refines (a, b) -> Refine_join (a, b)
  | Query_ast.And (a, b) -> Guarded_and (compile a, compile b)
  | Query_ast.Or (a, b) -> Union (compile a, compile b)
  | Query_ast.Not a -> Complement (compile a)

let p = Query_ast.node_pred_to_string

let rec to_string = function
  | Node_scan a -> Printf.sprintf "scan(%s)" (p a)
  | Edge_join (a, b, None) -> Printf.sprintf "edge-join(%s, %s)" (p a) (p b)
  | Edge_join (a, b, Some d) ->
      Printf.sprintf "edge-join(%s, %s, carries %S)" (p a) (p b) d
  | Reach_join (a, b) -> Printf.sprintf "reach-join(%s, %s)" (p a) (p b)
  | Inside_scan (a, w) -> Printf.sprintf "inside-scan(%s, %s)" (p a) w
  | Refine_join (a, b) -> Printf.sprintf "refine-join(%s, %s)" (p a) (p b)
  | Guarded_and (a, b) ->
      Printf.sprintf "and(%s, %s)" (to_string a) (to_string b)
  | Union (a, b) -> Printf.sprintf "union(%s, %s)" (to_string a) (to_string b)
  | Complement a -> Printf.sprintf "complement(%s)" (to_string a)

let rec operator_count = function
  | Node_scan _ | Edge_join _ | Reach_join _ | Inside_scan _ | Refine_join _ ->
      1
  | Guarded_and (a, b) | Union (a, b) ->
      1 + operator_count a + operator_count b
  | Complement a -> 1 + operator_count a

type search =
  | Keyword_lookup of string list
  | Rank of search
  | Quantize of float * search
  | Project_top of int * search

let compile_search ?quantize ?top keywords =
  let s = Keyword_lookup keywords in
  let s = match quantize with Some w -> Quantize (w, s) | None -> s in
  let s = Rank s in
  match top with Some k -> Project_top (k, s) | None -> s

let rec search_to_string = function
  | Keyword_lookup kws ->
      Printf.sprintf "lookup(%s)" (String.concat ", " kws)
  | Rank s -> Printf.sprintf "rank(%s)" (search_to_string s)
  | Quantize (w, s) ->
      Printf.sprintf "quantize(%g, %s)" w (search_to_string s)
  | Project_top (k, s) ->
      Printf.sprintf "top(%d, %s)" k (search_to_string s)
