(* Thin shim over the compiled engine: the public evaluator API predates
   plans, so these entry points prepare the view, compile the query and
   run it. Callers that evaluate repeatedly against one view should hold
   an {!Engine.t} themselves (as {!Session} and {!Repository} do) to
   reuse the preparation and the memoized closure. *)

type witness = { holds : bool; nodes : int list }

let of_engine (w : Engine.witness) =
  { holds = w.Engine.holds; nodes = w.Engine.nodes }

let spec_nodes_matching view pred =
  Engine.matching (Engine.of_spec_view view) pred

let eval_spec view q = of_engine (Engine.run_query (Engine.of_spec_view view) q)
let holds_spec view q = (eval_spec view q).holds
let exec_nodes_matching ev pred = Engine.matching (Engine.of_exec_view ev) pred

let eval_exec ?reaches ev q =
  of_engine (Engine.run_query (Engine.of_exec_view ?reaches ev) q)

let holds_exec ?reaches ev q = (eval_exec ?reaches ev q).holds

let provenance_of_matches ev pred =
  Engine.co_reachable_of_matches (Engine.of_exec_view ev) pred
