(** Evaluation of structural queries against views.

    Both evaluators work on what the view exposes: invisible modules,
    collapsed composites' internals and masked structure simply do not
    participate, so running the evaluator on a user's access view {e is}
    the privacy-correct semantics.

    On execution views, a node matches through the module it executes
    (a collapsed composite matches as the composite module). [Before]
    uses reachability in the view's DAG. *)

type witness = {
  holds : bool;
  nodes : int list;
      (** nodes involved in making the query true: match sets for node
          queries, endpoint pairs flattened for relational ones; empty
          when [holds = false]. Sorted. *)
}

val of_engine : Engine.witness -> witness
(** Coerce an engine witness (same contract). Callers holding a prepared
    {!Engine.t} evaluate through it and convert here. *)

(** {2 Specification views} *)

val spec_nodes_matching :
  Wfpriv_workflow.View.t -> Query_ast.node_pred -> Wfpriv_workflow.Ids.module_id list
(** Visible modules satisfying the predicate, sorted. *)

val eval_spec : Wfpriv_workflow.View.t -> Query_ast.t -> witness
val holds_spec : Wfpriv_workflow.View.t -> Query_ast.t -> bool

(** {2 Execution views} *)

val exec_nodes_matching :
  Wfpriv_workflow.Exec_view.t -> Query_ast.node_pred -> int list
(** View nodes whose module satisfies the predicate ([I]/[O] only match
    [Any]), sorted. *)

val eval_exec :
  ?reaches:(int -> int -> bool) ->
  Wfpriv_workflow.Exec_view.t ->
  Query_ast.t ->
  witness
(** [reaches] overrides the reachability oracle used by [Before] — pass
    {!Reach_cache.reaches} partially applied to serve a user group from a
    cached closure instead of a DFS per node pair. *)

val holds_exec :
  ?reaches:(int -> int -> bool) ->
  Wfpriv_workflow.Exec_view.t ->
  Query_ast.t ->
  bool

val provenance_of_matches :
  Wfpriv_workflow.Exec_view.t -> Query_ast.node_pred -> int list
(** Nodes of the view that can reach a match — "return the provenance
    information for the latter" (paper Sec. 4). Sorted; includes the
    matches. *)
