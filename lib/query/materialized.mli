(** The strawman the paper argues against (Sec. 1): "the alternative
    would be to create multiple repositories corresponding to different
    levels of access, which would lead to inconsistencies, inefficiency,
    and a lack of flexibility."

    This module {e implements} that alternative — one fully materialised
    copy of every entry (spec view + collapsed executions + readable
    items) per privilege level — so its costs can be measured against the
    integrated design (experiment E11):

    - {!space} vs {!integrated_space}: the duplication factor;
    - {!refresh_entry}: what every update must touch;
    - {!consistent}: the invariant that silently breaks when an update
      misses a copy (stale copies are exactly the paper's
      "inconsistencies"). *)

type t

val materialize :
  Repository.t -> levels:Wfpriv_privacy.Privilege.level list -> t
(** Build one copy per level (deduplicated, sorted). Raises
    [Invalid_argument] on an empty level list. *)

val levels : t -> Wfpriv_privacy.Privilege.level list

val space : t -> int
(** Stored elements across all copies: per materialised view, its nodes +
    edges + visible item count (spec views count modules + edges). *)

val integrated_space : Repository.t -> int
(** Same accounting for the single integrated store: each spec and each
    execution once, at full resolution. *)

val consistent : t -> Repository.t -> bool
(** Every copy matches what the integrated store would serve that level
    today: same entries, same spec-view prefixes, same number of
    executions, same visible items per execution. *)

val refresh_entry : t -> Repository.t -> string -> t
(** Rebuild one entry's views in {e every} copy from the master — the
    per-update work the multiple-repository design forces. Raises
    [Not_found] on unknown entries. *)

val search_copy :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string ->
  (string * Wfpriv_workflow.Ids.module_id) list
(** Keyword lookup served directly from a copy (modules of that level's
    spec views matching the term) — the one thing this design is good
    at. Raises [Invalid_argument] when the level was not materialised. *)
