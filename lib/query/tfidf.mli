(** TF/IDF scoring over a workflow repository (paper Sec. 4, "Impact of
    Ranking on Privacy Preservation").

    Documents are bags of terms — for workflows, the searchable terms of
    the modules visible in some view. Scores use raw term frequency and
    smoothed logarithmic IDF; what matters for the privacy analysis is
    only that the score is strictly increasing in the frequency of each
    query term, which is what lets rank positions leak masked
    frequencies ({!Ranking.infer_masked_tf}). *)

type corpus

val build : (string * string list) list -> corpus
(** [(doc_id, terms)] pairs; duplicate terms are the frequencies. Raises
    [Invalid_argument] on duplicate document ids. Terms are compared
    case-insensitively. *)

val nb_docs : corpus -> int
val doc_ids : corpus -> string list
(** Sorted. *)

val tf : corpus -> doc:string -> string -> int
(** Raw occurrence count (0 for unknown docs or terms). *)

val idf_for : n:int -> df:int -> float
(** [log ((1 + n) / (1 + df)) + 1] — the smoothing shared with the
    compressed index's level-partitioned scoring. *)

val idf : corpus -> string -> float
(** [idf_for] over the corpus size and the term's document frequency —
    positive even for ubiquitous terms. *)

val score : corpus -> doc:string -> string list -> float
(** Sum over query terms of [tf * idf]. *)

val scores : corpus -> string list -> (string * float) list
(** Score of every document for the query, sorted by doc id. *)
