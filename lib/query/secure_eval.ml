open Wfpriv_workflow
open Wfpriv_privacy

type result = {
  witness : Query_eval.witness;
  final_prefix : Ids.workflow_id list;
  collapse_count : int;
}

let on_the_fly privilege ~level exec q =
  let prefix = Privilege.access_prefix privilege level in
  let ev = Exec_view.of_prefix exec prefix in
  {
    witness = Query_eval.eval_exec ev q;
    final_prefix = prefix;
    collapse_count = 1;
  }

let zoom_out privilege ~level exec q =
  let spec = Execution.spec exec in
  let hierarchy = Hierarchy.of_spec spec in
  let allowed = Privilege.access_prefix privilege level in
  let rec refine prefix count =
    let ev = Exec_view.of_prefix exec prefix in
    let witness = Query_eval.eval_exec ev q in
    let offending = List.filter (fun w -> not (List.mem w allowed)) prefix in
    match offending with
    | [] -> { witness; final_prefix = prefix; collapse_count = count }
    | _ ->
        (* Hide the deepest offending workflow and retry: one "zoom-out",
           i.e. one more view construction. *)
        let deepest =
          List.fold_left
            (fun best w ->
              if Hierarchy.depth hierarchy w > Hierarchy.depth hierarchy best
              then w
              else best)
            (List.hd offending) (List.tl offending)
        in
        let drop = Hierarchy.descendants hierarchy deepest in
        let prefix' = List.filter (fun w -> not (List.mem w drop)) prefix in
        refine prefix' (count + 1)
  in
  refine (Spec.workflow_ids spec) 1

let agree a b =
  a.witness.Query_eval.holds = b.witness.Query_eval.holds
  && a.final_prefix = b.final_prefix
