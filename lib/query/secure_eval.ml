open Wfpriv_workflow

type result = {
  witness : Query_eval.witness;
  final_prefix : Ids.workflow_id list;
  collapse_count : int;
}

let eval_view exec prefix plan =
  let ev = Exec_view.of_prefix exec prefix in
  Query_eval.of_engine (Engine.run (Engine.of_exec_view ev) plan)

let gated_on_the_fly gate exec q =
  let prefix = Access_gate.allowed gate in
  {
    witness = eval_view exec prefix (Plan.compile q);
    final_prefix = prefix;
    collapse_count = 1;
  }

let gated_zoom_out gate exec q =
  let plan = Plan.compile q in
  let rec refine prefix count =
    (* The strawman really does evaluate on every intermediate view — the
       repeated view construction is the cost E5/E14 measure. Only the
       offender bookkeeping is incremental (the gate's allowed set). *)
    let witness = eval_view exec prefix plan in
    match Access_gate.deepest_offender gate prefix with
    | None -> { witness; final_prefix = prefix; collapse_count = count }
    | Some deepest ->
        refine (Access_gate.collapse gate prefix deepest) (count + 1)
  in
  refine (Spec.workflow_ids (Execution.spec exec)) 1

let on_the_fly privilege ~level exec q =
  gated_on_the_fly (Access_gate.make privilege ~level) exec q

let zoom_out privilege ~level exec q =
  gated_zoom_out (Access_gate.make privilege ~level) exec q

let agree a b =
  a.witness.Query_eval.holds = b.witness.Query_eval.holds
  && a.final_prefix = b.final_prefix
