(** Typed query plans: the compilation target of {!Query_ast} and the
    single operator vocabulary every evaluator executes (paper Sec. 4 —
    structural and keyword search share one engine so privacy is enforced
    in one place, not five).

    A structural query compiles to a tree of relational operators over
    view nodes; {!Engine.run} interprets the tree against a prepared
    view. Keyword search compiles to a small linear {!search} pipeline
    (lookup, then ranking transforms) executed by {!Engine.run_search}.
    Plans contain no privilege information: visibility is decided before
    planning by choosing the view ({!Access_gate}). *)

(** {2 Structural plans} *)

type t =
  | Node_scan of Query_ast.node_pred
      (** all view nodes whose module satisfies the predicate *)
  | Edge_join of Query_ast.node_pred * Query_ast.node_pred * string option
      (** direct dataflow edges between matches; [Some data] additionally
          requires the edge to carry the named data ([Carries]) *)
  | Reach_join of Query_ast.node_pred * Query_ast.node_pred
      (** strict reachability pairs ([Before]); answered from the
          prepared view's bitset closure *)
  | Inside_scan of Query_ast.node_pred * Wfpriv_workflow.Ids.workflow_id
      (** matches defined inside (a descendant of) the workflow *)
  | Refine_join of Query_ast.node_pred * Query_ast.node_pred
      (** τ-descendancy pairs: composite matches against matches defined
          inside their expansion subtree *)
  | Guarded_and of t * t
      (** short-circuit conjunction: the right branch only runs when the
          left holds *)
  | Union of t * t  (** first-match disjunction *)
  | Complement of t  (** negation; produces no witness nodes *)

val compile : Query_ast.t -> t
(** Structure-directed translation; total and deterministic. *)

val to_string : t -> string
(** Stable rendering for debugging and plan-shape tests. *)

val operator_count : t -> int
(** Number of operators in the plan tree. *)

(** {2 Search plans} *)

type search =
  | Keyword_lookup of string list
      (** score every repository document against the keywords *)
  | Rank of search  (** descending score, deterministic tie-break *)
  | Quantize of float * search
      (** privacy-aware score bucketing ({!Ranking.quantize}) *)
  | Project_top of int * search  (** keep the best [k] entries *)

val compile_search : ?quantize:float -> ?top:int -> string list -> search
(** The canonical pipeline: lookup, optional quantization, rank, optional
    top-[k] projection (outermost). *)

val search_to_string : search -> string
