(** Reachability caching keyed by user group (paper Sec. 4: "another
    promising direction is to consider user groups when utilizing cached
    information during query processing").

    Users sharing an access prefix see the same collapsed execution view,
    so one transitive closure serves the whole group. The cache maps a
    caller-supplied key — canonically [entry-name / run-index / prefix] —
    to the view's closure; [Before]-style queries then answer in O(1) per
    node pair instead of a DFS per pair.

    The cache never invalidates on its own: executions are immutable, so
    a key's closure is valid forever; evict only to bound memory. Both
    tables are bounded by [capacity] with exact LRU eviction (recency
    bumped on every hit), so long-lived processes serving many sessions
    keep the hot user groups and shed the stale ones. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of cached closures and the number of
    cached engines (each table separately, default 256); eviction is
    least-recently-used, ties broken deterministically. *)

val group_key :
  ?generation:int ->
  ?shards:int ->
  entry:string ->
  run:int ->
  prefix:Wfpriv_workflow.Ids.workflow_id list ->
  unit ->
  string
(** Canonical key for a user group's view of one stored run. Stored runs
    are immutable, so the key is epoch-free by default (generation 0 —
    byte-identical to the historical key) and cached closures/engines
    stay shareable across a live repository's generations; a non-zero
    [generation] suffixes the key for callers whose cached value depends
    on the whole corpus at one epoch, and [shards > 1] (default 1)
    additionally suffixes the shard topology — a sharded store's
    generation counter is only comparable within one layout. *)

val closure :
  t -> key:string -> Wfpriv_workflow.Exec_view.t -> Wfpriv_graph.Reachability.closure
(** Cached transitive closure of the view's graph; computed on miss. *)

val reaches : t -> key:string -> Wfpriv_workflow.Exec_view.t -> int -> int -> bool
(** O(1) after the first call per key. *)

val engine : t -> key:string -> Wfpriv_workflow.Exec_view.t -> Engine.t
(** Cached {e prepared engine} for the group's view: dense arrays plus
    the memoized bitset closure, built on miss. Repeated structural
    queries for one user group then skip preparation entirely — the
    engine-level refinement of {!closure}. Evicted LRU under the same
    capacity bound (counted separately from closures). *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Slots dropped to stay within capacity, both tables combined. *)

val entries : t -> int
(** Cached closures plus cached engines. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
(** One snapshot of all counters — what the bench tables report. *)

val clear : t -> unit
