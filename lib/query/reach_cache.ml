module Reachability = Wfpriv_graph.Reachability
open Wfpriv_workflow

type t = {
  table : (string, Reachability.closure) Hashtbl.t;
  mutable order : string list; (* insertion order, oldest last *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Reach_cache.create: capacity < 1";
  { table = Hashtbl.create 64; order = []; capacity; hits = 0; misses = 0 }

let group_key ~entry ~run ~prefix =
  Printf.sprintf "%s/%d/{%s}" entry run (String.concat "," prefix)

let closure t ~key view =
  match Hashtbl.find_opt t.table key with
  | Some c ->
      t.hits <- t.hits + 1;
      c
  | None ->
      t.misses <- t.misses + 1;
      let c = Reachability.closure (Exec_view.graph view) in
      if Hashtbl.length t.table >= t.capacity then begin
        match List.rev t.order with
        | oldest :: _ ->
            Hashtbl.remove t.table oldest;
            t.order <- List.filter (fun k -> k <> oldest) t.order
        | [] -> ()
      end;
      Hashtbl.replace t.table key c;
      t.order <- key :: t.order;
      c

let reaches t ~key view u v =
  Reachability.closure_reaches (closure t ~key view) u v

let hits t = t.hits
let misses t = t.misses
let entries t = Hashtbl.length t.table

let clear t =
  Hashtbl.reset t.table;
  t.order <- [];
  t.hits <- 0;
  t.misses <- 0
