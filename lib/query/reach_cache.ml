module Reachability = Wfpriv_graph.Reachability
open Wfpriv_workflow

(* Two FIFO-evicting tables share the counters: closures (the original
   per-user-group reachability cache) and prepared engines (whole
   prepared views, whose bitset closures are memoized inside the
   Engine.t, so a cached engine answers repeated structural queries with
   zero re-preparation). Executions are immutable, so entries never
   invalidate; eviction only bounds memory. *)
type t = {
  table : (string, Reachability.closure) Hashtbl.t;
  mutable order : string list; (* insertion order, oldest last *)
  engines : (string, Engine.t) Hashtbl.t;
  mutable engine_order : string list;
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Reach_cache.create: capacity < 1";
  {
    table = Hashtbl.create 64;
    order = [];
    engines = Hashtbl.create 64;
    engine_order = [];
    capacity;
    hits = 0;
    misses = 0;
  }

let group_key ~entry ~run ~prefix =
  Printf.sprintf "%s/%d/{%s}" entry run (String.concat "," prefix)

let closure t ~key view =
  match Hashtbl.find_opt t.table key with
  | Some c ->
      t.hits <- t.hits + 1;
      c
  | None ->
      t.misses <- t.misses + 1;
      let c = Reachability.closure (Exec_view.graph view) in
      if Hashtbl.length t.table >= t.capacity then begin
        match List.rev t.order with
        | oldest :: _ ->
            Hashtbl.remove t.table oldest;
            t.order <- List.filter (fun k -> k <> oldest) t.order
        | [] -> ()
      end;
      Hashtbl.replace t.table key c;
      t.order <- key :: t.order;
      c

let reaches t ~key view u v =
  Reachability.closure_reaches (closure t ~key view) u v

let engine t ~key view =
  match Hashtbl.find_opt t.engines key with
  | Some e ->
      t.hits <- t.hits + 1;
      e
  | None ->
      t.misses <- t.misses + 1;
      let e = Engine.of_exec_view view in
      if Hashtbl.length t.engines >= t.capacity then begin
        match List.rev t.engine_order with
        | oldest :: _ ->
            Hashtbl.remove t.engines oldest;
            t.engine_order <- List.filter (fun k -> k <> oldest) t.engine_order
        | [] -> ()
      end;
      Hashtbl.replace t.engines key e;
      t.engine_order <- key :: t.engine_order;
      e

let hits t = t.hits
let misses t = t.misses
let entries t = Hashtbl.length t.table + Hashtbl.length t.engines

let clear t =
  Hashtbl.reset t.table;
  t.order <- [];
  Hashtbl.reset t.engines;
  t.engine_order <- [];
  t.hits <- 0;
  t.misses <- 0
