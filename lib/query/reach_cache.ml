module Reachability = Wfpriv_graph.Reachability
open Wfpriv_workflow

(* Two LRU-evicting tables share the counters: closures (the original
   per-user-group reachability cache) and prepared engines (whole
   prepared views, whose bitset closures are memoized inside the
   Engine.t, so a cached engine answers repeated structural queries with
   zero re-preparation). Executions are immutable, so entries never
   invalidate; eviction only bounds memory. Recency is a monotone tick
   stamped on every hit and insert; eviction scans for the stalest slot
   — O(capacity), fine at the few-hundred capacities this cache runs
   at, and it buys exact LRU without an intrusive list. *)

(* Every cache instance also mirrors its per-instance stats into three
   process-wide counters, so `wfpriv stats` sees cache behaviour without
   threading cache handles through the CLI. Op-scope: a cache serves
   whole user groups, not one privilege level. *)
module Obs = Wfpriv_obs

let m_hits = Obs.Registry.counter "cache.hits"
let m_misses = Obs.Registry.counter "cache.misses"
let m_evictions = Obs.Registry.counter "cache.evictions"

type 'v slot = { value : 'v; mutable last_used : int }
type stats = { hits : int; misses : int; evictions : int; entries : int }

type t = {
  table : (string, Reachability.closure slot) Hashtbl.t;
  engines : (string, Engine.t slot) Hashtbl.t;
  capacity : int;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 256) () =
  if capacity < 1 then invalid_arg "Reach_cache.create: capacity < 1";
  {
    table = Hashtbl.create 64;
    engines = Hashtbl.create 64;
    capacity;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let group_key ?(generation = 0) ?(shards = 1) ~entry ~run ~prefix () =
  (* Executions are immutable once stored, so closure/engine entries for
     a given (entry, run) stay valid across epochs and the generation
     defaults to 0 — keys are then byte-identical to the frozen ones.
     Callers that must re-key per epoch (anything derived from the whole
     corpus rather than one stored run) pass the generation; callers
     reading a sharded store pass its shard count, since its generation
     counter only means something within one topology. *)
  let epoch = if generation = 0 then "" else Printf.sprintf "@g%d" generation in
  let topology = if shards <= 1 then "" else Printf.sprintf "@s%d" shards in
  Printf.sprintf "%s/%d/{%s}%s%s" entry run
    (String.concat "," prefix)
    epoch topology

let touch t slot =
  t.tick <- t.tick + 1;
  slot.last_used <- t.tick

(* Evict the least-recently-used slot of one table (ties broken towards
   the smaller key, so eviction order is deterministic). *)
let evict_lru t tbl =
  let victim =
    Hashtbl.fold
      (fun k slot best ->
        match best with
        | Some (_, bu) when bu < slot.last_used -> best
        | Some (bk, bu) when bu = slot.last_used && bk < k -> best
        | _ -> Some (k, slot.last_used))
      tbl None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove tbl k;
      t.evictions <- t.evictions + 1;
      Obs.Counter.incr_op m_evictions
  | None -> ()

let find_or_build t tbl ~key build =
  match Hashtbl.find_opt tbl key with
  | Some slot ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr_op m_hits;
      touch t slot;
      slot.value
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr_op m_misses;
      let v = build () in
      if Hashtbl.length tbl >= t.capacity then evict_lru t tbl;
      t.tick <- t.tick + 1;
      Hashtbl.replace tbl key { value = v; last_used = t.tick };
      v

let closure t ~key view =
  find_or_build t t.table ~key (fun () ->
      Reachability.closure (Exec_view.graph view))

let reaches t ~key view u v =
  Reachability.closure_reaches (closure t ~key view) u v

let engine t ~key view =
  find_or_build t t.engines ~key (fun () -> Engine.of_exec_view view)

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let entries t = Hashtbl.length t.table + Hashtbl.length t.engines

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    entries = entries t;
  }

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.engines;
  t.tick <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0
