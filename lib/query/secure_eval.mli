(** Privacy-preserving query evaluation strategies (paper Sec. 4,
    "Efficient Search with Privacy Guarantees").

    The paper contrasts two ways to answer a structural query for a user
    who may only see their access view of an execution:

    - {e zoom-out} (the strawman): "first construct a full answer,
      oblivious to the privacy requirement. If the result reveals
      sensitive information, gradually zoom-out the view by hiding
      details of composite modules ... until privacy is achieved.
      However, this can be expensive as each zoom-out may involve a disk
      access." {!zoom_out} evaluates on the full execution, then while
      the current view exposes any workflow beyond the user's access
      prefix, collapses the deepest offending workflow and re-evaluates.
    - {e on-the-fly}: build the user's access view once and evaluate
      directly — {!on_the_fly}.

    Both return the same answer (the access-view evaluation); experiment
    E5 measures the cost gap. [collapse_count] exposes how many view
    reconstructions zoom-out performed (its "disk accesses"). *)

type result = {
  witness : Query_eval.witness;
  final_prefix : Wfpriv_workflow.Ids.workflow_id list;
  collapse_count : int;  (** view (re)constructions performed *)
}

val on_the_fly :
  Wfpriv_privacy.Privilege.t ->
  level:Wfpriv_privacy.Privilege.level ->
  Wfpriv_workflow.Execution.t ->
  Query_ast.t ->
  result
(** Always [collapse_count = 1]. *)

val zoom_out :
  Wfpriv_privacy.Privilege.t ->
  level:Wfpriv_privacy.Privilege.level ->
  Wfpriv_workflow.Execution.t ->
  Query_ast.t ->
  result

val agree : result -> result -> bool
(** Same holds-bit and same final prefix (the invariant E5 checks). *)

(** {2 Gate-based entry points}

    Callers that already hold an {!Access_gate.t} (one user, many
    queries) evaluate through it directly; the level-taking functions
    above are shims building a fresh gate per call. *)

val gated_on_the_fly :
  Access_gate.t -> Wfpriv_workflow.Execution.t -> Query_ast.t -> result

val gated_zoom_out :
  Access_gate.t -> Wfpriv_workflow.Execution.t -> Query_ast.t -> result
(** The deepest offending workflow is collapsed each round; depth ties
    break to the lexicographically smallest workflow id, so collapse
    sequences (and [collapse_count]) are reproducible across runs. *)
