type entry = { doc : string; score : float }

let rank entries =
  List.sort
    (fun a b ->
      let c = compare b.score a.score in
      if c <> 0 then c else compare a.doc b.doc)
    entries

let top_k k entries = List.filteri (fun i _ -> i < k) (rank entries)

let position ranked doc =
  let rec go i = function
    | [] -> None
    | e :: rest -> if String.equal e.doc doc then Some i else go (i + 1) rest
  in
  go 0 ranked

let quantize ~width entries =
  if width <= 0.0 then invalid_arg "Ranking.quantize: width must be positive";
  List.map
    (fun e -> { e with score = Float.of_int (int_of_float (e.score /. width)) *. width })
    entries

type interval = { lo : int; hi : int }

let width i = i.hi - i.lo + 1

(* A candidate tf is consistent with the published order when ranking the
   (transformed) scores reproduces it. [transform] is identity for exact
   scores and bucket-flooring for quantised ones. *)
let feasible_tfs ~transform ~target_base ~others ~idf ~max_tf ~ranking ~target =
  if max_tf < 0 then invalid_arg "Ranking.infer: max_tf < 0";
  if idf <= 0.0 then invalid_arg "Ranking.infer: idf <= 0";
  if not (List.mem target ranking) then
    invalid_arg "Ranking.infer: target not in ranking";
  let consistent t =
    let s = transform (target_base +. (float_of_int t *. idf)) in
    let score_of d =
      if String.equal d target then s
      else
        match List.assoc_opt d others with
        | Some x -> transform x
        | None -> invalid_arg (Printf.sprintf "Ranking.infer: unknown doc %S" d)
    in
    (* Published order must be a valid ranking of these scores. *)
    let rec ordered = function
      | a :: (b :: _ as rest) ->
          let sa = score_of a and sb = score_of b in
          (sa > sb || (sa = sb && String.compare a b < 0)) && ordered rest
      | _ -> true
    in
    ordered ranking
  in
  List.filter consistent (List.init (max_tf + 1) Fun.id)

let to_interval ~max_tf = function
  | [] -> { lo = 0; hi = max_tf }
  | ts -> { lo = List.fold_left min max_int ts; hi = List.fold_left max 0 ts }

let infer_masked_tf ~target_base ~others ~idf ~max_tf ~ranking ~target =
  feasible_tfs ~transform:Fun.id ~target_base ~others ~idf ~max_tf ~ranking
    ~target
  |> to_interval ~max_tf

let infer_masked_tf_quantized ~bucket_width ~target_base ~others ~idf ~max_tf
    ~ranking ~target =
  if bucket_width <= 0.0 then invalid_arg "Ranking.infer: bucket_width <= 0";
  let transform x =
    Float.of_int (int_of_float (x /. bucket_width)) *. bucket_width
  in
  feasible_tfs ~transform ~target_base ~others ~idf ~max_tf ~ranking ~target
  |> to_interval ~max_tf
