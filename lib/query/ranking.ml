type entry = { doc : string; score : float }

let rank entries =
  List.sort
    (fun a b ->
      let c = compare b.score a.score in
      if c <> 0 then c else compare a.doc b.doc)
    entries

let top_k k entries = List.filteri (fun i _ -> i < k) (rank entries)

let position ranked doc =
  let rec go i = function
    | [] -> None
    | e :: rest -> if String.equal e.doc doc then Some i else go (i + 1) rest
  in
  go 0 ranked

(* Bucket by flooring, not [int_of_float] (which truncates toward zero
   and would round negative scores up into the wrong bucket). *)
let bucket ~width x = Float.of_int (int_of_float (Float.floor (x /. width))) *. width

let quantize ~width entries =
  if width <= 0.0 then invalid_arg "Ranking.quantize: width must be positive";
  List.map (fun e -> { e with score = bucket ~width e.score }) entries

(* {2 Block-max WAND}

   The ranker sees postings only through this cursor record, so the
   privacy argument is structural: every field is supplied by the index
   from partitions at levels <= the caller's, and the ranker adds no
   other input — each pruning decision is a pure function of what the
   caller may see. [wc_lb], [wc_block_max] and [wc_block_last] must
   never decode a block; [wc_cur] and [wc_score] may. *)
type wand_cursor = {
  wc_ub : float;  (* static upper bound on any doc's contribution *)
  wc_lb : unit -> int;  (* lower bound on the current doc; no decode *)
  wc_block_max : unit -> float;  (* bound over the current block *)
  wc_block_last : unit -> int;  (* last doc the block bound covers *)
  wc_cur : unit -> int;  (* exact current doc; max_int when exhausted *)
  wc_score : int -> float;  (* seek to the doc, contribution (0. if absent) *)
  wc_seek : int -> unit;
  wc_next : int -> unit;  (* advance past the doc if positioned on it *)
}

let top_k_wand ~k ~doc cursors =
  if k <= 0 || cursors = [] then []
  else begin
    let all = Array.of_list cursors in
    let n = Array.length all in
    (* Worst-first top-k buffer with the deterministic (score desc, doc
       asc) order of [rank]; doc ids compare like doc names (Symtab). *)
    let heap = ref [] and hsize = ref 0 in
    let better s d (s', d') = s > s' || (s = s' && d < d') in
    let rec ins s d = function
      | [] -> [ (s, d) ]
      | (s', d') :: _ as l when better s' d' (s, d) -> (s, d) :: l
      | x :: tl -> x :: ins s d tl
    in
    let insert s d =
      if !hsize < k then begin
        incr hsize;
        heap := ins s d !heap
      end
      else
        match !heap with
        | (ws, wd) :: rest when better s d (ws, wd) -> heap := ins s d rest
        | _ -> ()
    in
    (* Tie-conservative qualification: with a full buffer a candidate
       must beat the worst kept (score, doc) pair, so pruning on "cannot
       beat" never drops a doc that deterministic ranking would keep. *)
    let can_beat bound d =
      !hsize < k
      || match !heap with [] -> true | (ws, wd) :: _ -> better bound d (ws, wd)
    in
    let lbs = Array.make n 0 in
    let by_lb = Array.init n Fun.id in
    let continue = ref true in
    while !continue do
      Array.iteri (fun i c -> lbs.(i) <- c.wc_lb ()) all;
      Array.sort (fun a b -> compare (lbs.(a), a) (lbs.(b), b)) by_lb;
      let lb0 = lbs.(by_lb.(0)) in
      if lb0 = max_int then continue := false
      else begin
        (* Pivot: the shortest sorted prefix whose static bounds could
           beat the buffer at the smallest possible doc. *)
        let acc = ref 0.0 and pivot = ref (-1) in
        (try
           for i = 0 to n - 1 do
             if lbs.(by_lb.(i)) = max_int then raise Exit;
             acc := !acc +. all.(by_lb.(i)).wc_ub;
             if can_beat !acc lb0 then begin
               pivot := i;
               raise Exit
             end
           done
         with Exit -> ());
        if !pivot < 0 then continue := false
        else begin
          (* Extend across equal lower bounds so the window below the
             next cursor is never empty (progress guarantee). *)
          let p = ref !pivot in
          while
            !p + 1 < n && lbs.(by_lb.(!p + 1)) = lbs.(by_lb.(!p))
          do
            incr p
          done;
          let p = !p in
          let d_blocks = ref max_int and refined = ref 0.0 in
          for i = 0 to p do
            d_blocks := min !d_blocks (all.(by_lb.(i)).wc_block_last ());
            refined := !refined +. all.(by_lb.(i)).wc_block_max ()
          done;
          let d_next = if p + 1 < n then lbs.(by_lb.(p + 1)) else max_int in
          let d' =
            min d_next
              (if !d_blocks = max_int then max_int else !d_blocks + 1)
          in
          if d' > lb0 && not (can_beat !refined lb0) then
            (* No doc below [d'] can qualify: docs there involve only the
               prefix cursors, whose block bounds cannot beat the buffer.
               Jump, skipping whole blocks undecoded. *)
            for i = 0 to p do
              all.(by_lb.(i)).wc_seek d'
            done
          else begin
            (* Evaluate the smallest actual doc among the prefix; the
               contribution sum runs over every cursor in query order, so
               the float accumulation matches the exhaustive ranker. *)
            let d0 = ref max_int in
            for i = 0 to p do
              d0 := min !d0 (all.(by_lb.(i)).wc_cur ())
            done;
            if !d0 = max_int then continue := false
            else begin
              let s = ref 0.0 in
              for i = 0 to n - 1 do
                s := !s +. all.(i).wc_score !d0
              done;
              insert !s !d0;
              for i = 0 to n - 1 do
                all.(i).wc_next !d0
              done
            end
          end
        end
      end
    done;
    List.rev_map (fun (s, d) -> { doc = doc d; score = s }) !heap
  end

type interval = { lo : int; hi : int }

let width i = i.hi - i.lo + 1

(* A candidate tf is consistent with the published order when ranking the
   (transformed) scores reproduces it. [transform] is identity for exact
   scores and bucket-flooring for quantised ones. *)
let feasible_tfs ~transform ~target_base ~others ~idf ~max_tf ~ranking ~target =
  if max_tf < 0 then invalid_arg "Ranking.infer: max_tf < 0";
  if idf <= 0.0 then invalid_arg "Ranking.infer: idf <= 0";
  if not (List.mem target ranking) then
    invalid_arg "Ranking.infer: target not in ranking";
  let consistent t =
    let s = transform (target_base +. (float_of_int t *. idf)) in
    let score_of d =
      if String.equal d target then s
      else
        match List.assoc_opt d others with
        | Some x -> transform x
        | None -> invalid_arg (Printf.sprintf "Ranking.infer: unknown doc %S" d)
    in
    (* Published order must be a valid ranking of these scores. *)
    let rec ordered = function
      | a :: (b :: _ as rest) ->
          let sa = score_of a and sb = score_of b in
          (sa > sb || (sa = sb && String.compare a b < 0)) && ordered rest
      | _ -> true
    in
    ordered ranking
  in
  List.filter consistent (List.init (max_tf + 1) Fun.id)

let to_interval ~max_tf = function
  | [] -> { lo = 0; hi = max_tf }
  | ts -> { lo = List.fold_left min max_int ts; hi = List.fold_left max 0 ts }

let infer_masked_tf ~target_base ~others ~idf ~max_tf ~ranking ~target =
  feasible_tfs ~transform:Fun.id ~target_base ~others ~idf ~max_tf ~ranking
    ~target
  |> to_interval ~max_tf

let infer_masked_tf_quantized ~bucket_width ~target_base ~others ~idf ~max_tf
    ~ranking ~target =
  if bucket_width <= 0.0 then invalid_arg "Ranking.infer: bucket_width <= 0";
  feasible_tfs ~transform:(bucket ~width:bucket_width) ~target_base ~others
    ~idf ~max_tf ~ranking ~target
  |> to_interval ~max_tf
