(** A provenance-aware workflow repository with integrated privacy
    (paper Sec. 1: "repositories of workflow specifications and of
    provenance graphs ... made available as part of scientific
    information sharing", with privacy designed in rather than bolted
    on).

    Each entry bundles a specification, its privacy policy and its stored
    executions. All read APIs take the caller's privilege level and only
    ever traverse the caller's access views and masked projections —
    there is one repository, not one per privilege setting. *)

type entry = {
  name : string;
  spec : Wfpriv_workflow.Spec.t;
  policy : Wfpriv_privacy.Policy.t;
  executions : Wfpriv_workflow.Execution.t list;
}

type t

val create : unit -> t

val freeze : t -> t
(** An O(1) immutable snapshot: captures the current entry list. All
    writes build fresh lists and records instead of mutating in place,
    so the snapshot keeps answering every read API unchanged while the
    original continues to grow — the per-generation repository a live
    reader pins. (Immutability is by convention: don't write to a frozen
    value.) *)

val add :
  t ->
  name:string ->
  policy:Wfpriv_privacy.Policy.t ->
  ?executions:Wfpriv_workflow.Execution.t list ->
  unit ->
  unit
(** The spec is the policy's. Raises [Invalid_argument] on duplicate
    names or on executions of a different spec. *)

val add_execution : t -> name:string -> Wfpriv_workflow.Execution.t -> unit

(** Reified repository writes, the unit of journaling for the durable
    storage engine ([lib/durable]): every way the repository can change
    is a value of this type, so a write-ahead log that records mutations
    captures the full state evolution. *)
type mutation =
  | Add_entry of {
      entry_name : string;
      policy : Wfpriv_privacy.Policy.t;
      executions : Wfpriv_workflow.Execution.t list;
    }
  | Add_execution of { entry_name : string; exec : Wfpriv_workflow.Execution.t }
  | Erase of { entry_name : string; data_name : string option }
      (** [data_name = None] removes the whole entry;
          [Some n] redacts every stored value of data name [n] inside the
          entry's executions to {!Wfpriv_workflow.Data_value.masked},
          keeping the provenance structure. Replayed like any mutation —
          the durable store additionally rewrites history (checkpoint +
          compaction) so the erased bytes leave the disk. *)

val validate : t -> mutation -> unit
(** Raise exactly as {!apply} would, without changing the repository.
    Lets a journal refuse a doomed mutation before persisting it. *)

val apply : t -> mutation -> unit
(** Apply a mutation ({!add} / {!add_execution} / {!erase}
    respectively). Raises [Invalid_argument] / [Not_found] as they do;
    the repository is unchanged on failure. *)

val erase : t -> name:string -> string option -> unit
(** Direct form of the {!Erase} mutation. Builds fresh entry records
    (freeze semantics: earlier {!freeze} snapshots keep the un-erased
    state in memory until dropped). Raises [Not_found] on unknown
    entries. *)

val find : t -> string -> entry
(** Raises [Not_found]. *)

val names : t -> string list
(** Sorted. *)

val nb_entries : t -> int

type search_hit = {
  entry_name : string;
  answer : Keyword.answer;  (** capped at the caller's access view *)
  score : float;  (** TF/IDF of the query against the visible terms *)
}

val keyword_search :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  ?strategy:[ `Minimal | `Specific ] ->
  ?quantize_scores:float ->
  string list ->
  search_hit list
(** Ranked hits across the repository. Witness modules are restricted to
    those visible at the caller's level, and each answer view is the meet
    of the keyword answer with the caller's access view, so no hit ever
    reveals structure beyond the caller's privilege. [quantize_scores]
    applies privacy-aware score bucketing before ranking. *)

val structural_query :
  ?cache:Reach_cache.t ->
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string ->
  Query_ast.t ->
  Query_eval.witness list
(** Evaluate a structural query against each stored execution of the
    named entry, on the caller's execution views. When [cache] is given,
    reachability is answered from the per-user-group closure cache
    (Sec. 4's "consider user groups when utilizing cached information").
    Raises [Not_found] on unknown entries. *)

val visible_corpus :
  t -> level:Wfpriv_privacy.Privilege.level -> Tfidf.corpus
(** The TF/IDF corpus a user at this level searches: per entry, the terms
    of the modules visible in their access view. *)

val index_entries :
  t ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list
(** The (name, spec, privilege) triples {!search_index} builds from, in
    entry order — what a live repository streams into its LSM index
    ({!Live_index}). *)

val search_index : ?pool:Wfpriv_parallel.Pool.t -> t -> Index.t
(** The repository's privacy-partitioned compressed index: one build
    serves every privilege level (lookups at level [l] decode only the
    [<= l] partitions). Entry names are the doc universe — public, as
    {!names} is. *)

val keyword_topk :
  ?index:Index.t ->
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  k:int ->
  string list ->
  Ranking.entry list
(** The top-[k] entry names for the keywords at the level, by block-max
    WAND over {!search_index} (built on the fly unless [index] is
    passed) — the scalable front half of {!keyword_search}. Scores
    follow the index's corpus model: every module whose privilege floor
    is [<= level] contributes its terms — the same predicate that
    admits witnesses ([Access_gate.sees_module]). {!keyword_search}
    instead scores against {!visible_corpus} (the frontier of the
    access view, where expanded composites no longer appear), so the
    two scores can differ on entries with expandable composites, while
    agreeing on which entries match at all. *)

type prov_hit = {
  prov_entry : string;
  run : int;  (** index of the execution within the entry *)
  prov_answer : Exec_search.answer;  (** capped at the access view *)
}

val provenance_search :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string list ->
  prov_hit list
(** Keyword search over every stored execution (the provenance half of
    Sec. 1's search promise). A witness is admissible only when it is
    {e displayable} within the caller's access view (its required prefix
    is permitted) and, additionally, module witnesses must be visible at
    the caller's level and data witnesses readable under the entry's
    data classification. Answer views are intersected with the access
    view — and by the displayability rule the chosen witness always
    survives that cap. Hits ordered by (entry, run). *)
