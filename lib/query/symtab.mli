(** Interned document dictionary for the succinct index.

    Doc names are interned into dense int ids; the index stores and
    compares ids only and resolves names at the API boundary. Ids
    assigned through {!of_sorted} follow the input (sorted) order, so
    comparing ids is comparing names — the property the compressed
    cursors rely on to reproduce the boxed index's (doc, module) order
    and the ranker's deterministic name tie-break. Module ids need no
    interning: {!Wfpriv_workflow.Ids.module_id} is already a dense int. *)

type t

val of_sorted : string list -> t
(** Intern in list order; ids are [0 .. length - 1]. The caller sorts
    (and dedups) first, making id order equal name order. Raises
    [Invalid_argument] when the input is not strictly increasing. *)

val find_opt : t -> string -> int option
val name : t -> int -> string
(** Raises [Invalid_argument] on an unknown id. *)

val size : t -> int
