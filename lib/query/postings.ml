module Binary = Wfpriv_serial.Binary
module Obs = Wfpriv_obs

(* Decodes and skips are observer-visible per-level metrics: the
   recording site is the cursor, which knows the requesting level, and a
   level-l cursor only ever walks partitions at levels <= l. *)
let m_decoded = Obs.Registry.counter "index.blocks_decoded"
let m_skipped = Obs.Registry.counter "index.blocks_skipped"
let block_target = 128

type block = {
  b_last : int;  (* skip pointer: last doc id in the block *)
  b_count : int;  (* entries (doc, module, tf triples) *)
  b_max_tf : int;
  b_off : int;
}

type t = {
  level : Wfpriv_privacy.Privilege.level;
  blocks : block array;
  data : string;
  entries : int;
  postings : int;  (* sum of tf *)
  docs : int;
  max_tf : int;
  max_count : int;  (* largest b_count: cursor buffer size *)
}

let level t = t.level
let entries t = t.entries
let postings t = t.postings
let docs t = t.docs
let max_tf t = t.max_tf
let blocks t = Array.length t.blocks
let bytes t = String.length t.data

let encode ~level triples =
  let rec check = function
    | (d, m, tf) :: rest ->
        if d < 0 || m < 0 || tf < 1 then
          invalid_arg "Postings.encode: negative id or tf < 1";
        (match rest with
        | (d', m', _) :: _ when compare (d, m) (d', m') >= 0 ->
            invalid_arg "Postings.encode: triples not strictly increasing"
        | _ -> ());
        check rest
    | [] -> ()
  in
  check triples;
  let w = Binary.Writer.create () in
  let blocks = ref [] in
  (* Open-block state. Blocks close at [block_target] entries, but only
     on a document boundary — a doc's modules never straddle blocks, so
     cursors aggregate a doc without peeking at the next block. *)
  let b_start = ref 0 and b_count = ref 0 and b_max = ref 0 in
  let prev_doc = ref 0 and prev_last = ref 0 in
  let entries = ref 0 and postings = ref 0 and docs = ref 0 in
  let max_tf = ref 0 and max_count = ref 0 in
  (* Aggregated frequency of the document being encoded: score bounds
     must cover the per-document sum across modules, not one entry. *)
  let doc_tf = ref 0 in
  let flush () =
    if !b_count > 0 then begin
      blocks :=
        {
          b_last = !prev_doc;
          b_count = !b_count;
          b_max_tf = !b_max;
          b_off = !b_start;
        }
        :: !blocks;
      if !b_count > !max_count then max_count := !b_count;
      prev_last := !prev_doc;
      b_start := Binary.Writer.length w;
      b_count := 0;
      b_max := 0
    end
  in
  List.iter
    (fun (doc, m, tf) ->
      if !b_count >= block_target && doc <> !prev_doc then flush ();
      let base = if !b_count = 0 then !prev_last else !prev_doc in
      Binary.Writer.varint w (doc - base);
      Binary.Writer.varint w m;
      Binary.Writer.varint w (tf - 1);
      if !entries = 0 || doc <> !prev_doc then begin
        incr docs;
        doc_tf := tf
      end
      else doc_tf := !doc_tf + tf;
      prev_doc := doc;
      incr b_count;
      incr entries;
      postings := !postings + tf;
      if !doc_tf > !b_max then b_max := !doc_tf;
      if !doc_tf > !max_tf then max_tf := !doc_tf)
    triples;
  flush ();
  {
    level;
    blocks = Array.of_list (List.rev !blocks);
    data = Binary.Writer.contents w;
    entries = !entries;
    postings = !postings;
    docs = !docs;
    max_tf = !max_tf;
    max_count = !max_count;
  }

let decode_into t i ~docs ~mods ~tfs =
  let b = t.blocks.(i) in
  let base = if i = 0 then 0 else t.blocks.(i - 1).b_last in
  let r = Binary.Reader.of_string ~pos:b.b_off t.data in
  let prev = ref base in
  for j = 0 to b.b_count - 1 do
    let d = !prev + Binary.Reader.varint r in
    docs.(j) <- d;
    mods.(j) <- Binary.Reader.varint r;
    tfs.(j) <- 1 + Binary.Reader.varint r;
    prev := d
  done;
  b.b_count

let iter ~at t f =
  let n = t.max_count in
  if n > 0 then begin
    let docs = Array.make n 0 and mods = Array.make n 0 in
    let tfs = Array.make n 0 in
    Array.iteri
      (fun i _ ->
        let len = decode_into t i ~docs ~mods ~tfs in
        Obs.Counter.incr m_decoded ~at;
        for j = 0 to len - 1 do
          f docs.(j) mods.(j) tfs.(j)
        done)
      t.blocks
  end

type cursor = {
  part : t;
  at : Wfpriv_privacy.Privilege.level;
  mutable blk : int;
  mutable decoded : bool;  (* bufs hold block [blk] *)
  mutable pos : int;  (* next unconsumed entry in the decoded block *)
  mutable len : int;
  mutable floor : int;  (* pending seek target: smaller docs are dropped *)
  c_docs : int array;
  c_mods : int array;
  c_tfs : int array;
  mutable loaded : bool;  (* doc/tf lookahead valid *)
  mutable c_doc : int;
  mutable c_tf : int;
}

let cursor ~at part =
  let n = max part.max_count 1 in
  {
    part;
    at;
    blk = 0;
    decoded = false;
    pos = 0;
    len = 0;
    floor = 0;
    c_docs = Array.make n 0;
    c_mods = Array.make n 0;
    c_tfs = Array.make n 0;
    loaded = false;
    c_doc = max_int;
    c_tf = 0;
  }

let nblocks c = Array.length c.part.blocks

let ensure_decoded c =
  if not c.decoded then begin
    c.len <-
      decode_into c.part c.blk ~docs:c.c_docs ~mods:c.c_mods ~tfs:c.c_tfs;
    c.pos <- 0;
    c.decoded <- true;
    Obs.Counter.incr m_decoded ~at:c.at
  end

(* Aggregate the next document (at or above the floor) into the
   lookahead. Documents never cross a block boundary, so the sum loop
   stays inside the decoded buffer. *)
let rec load c =
  if not c.loaded then
    if c.blk >= nblocks c then begin
      c.c_doc <- max_int;
      c.c_tf <- 0;
      c.loaded <- true
    end
    else begin
      ensure_decoded c;
      while c.pos < c.len && c.c_docs.(c.pos) < c.floor do
        c.pos <- c.pos + 1
      done;
      if c.pos >= c.len then begin
        c.blk <- c.blk + 1;
        c.decoded <- false;
        load c
      end
      else begin
        let d = c.c_docs.(c.pos) in
        let s = ref 0 in
        while c.pos < c.len && c.c_docs.(c.pos) = d do
          s := !s + c.c_tfs.(c.pos);
          c.pos <- c.pos + 1
        done;
        c.c_doc <- d;
        c.c_tf <- !s;
        c.loaded <- true
      end
    end

let cur c =
  load c;
  c.c_doc

let tf c =
  load c;
  c.c_tf

let next c =
  load c;
  if c.c_doc <> max_int then c.loaded <- false

let seek c target =
  if not (c.loaded && c.c_doc >= target) then begin
    if target > c.floor then c.floor <- target;
    c.loaded <- false;
    (* Finish the decoded block without touching the directory. *)
    if c.decoded then begin
      while c.pos < c.len && c.c_docs.(c.pos) < target do
        c.pos <- c.pos + 1
      done;
      if c.pos >= c.len then begin
        c.blk <- c.blk + 1;
        c.decoded <- false
      end
    end;
    (* Gallop over whole blocks by skip pointer, never decoding them. *)
    if not c.decoded then
      while c.blk < nblocks c && c.part.blocks.(c.blk).b_last < target do
        c.blk <- c.blk + 1;
        Obs.Counter.incr m_skipped ~at:c.at
      done
  end

(* The block the cursor's next document lives in: the one holding the
   lookahead, the decoded one while entries remain, else the next
   directory slot. *)
let current_block c =
  if c.loaded then if c.c_doc = max_int then nblocks c else c.blk
  else if c.decoded && c.pos >= c.len then c.blk + 1
  else c.blk

let lower_bound c =
  if c.loaded then c.c_doc
  else
    let structural =
      if c.decoded && c.pos < c.len then c.c_docs.(c.pos)
      else
        let b = current_block c in
        if b >= nblocks c then max_int
        else if b = 0 then 0
        else c.part.blocks.(b - 1).b_last + 1
    in
    max c.floor structural

let block_last c =
  let b = current_block c in
  if b >= nblocks c then max_int else c.part.blocks.(b).b_last

let block_max_tf c =
  let b = current_block c in
  if b >= nblocks c then 0 else c.part.blocks.(b).b_max_tf

let global_max_tf c = c.part.max_tf
