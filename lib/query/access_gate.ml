open Wfpriv_workflow
open Wfpriv_privacy

type t = {
  g_spec : Spec.t;
  g_level : Privilege.level;
  g_generation : int;
  g_shards : int;
  privilege : Privilege.t;
  classification : Data_privacy.t option;
  g_allowed : Ids.workflow_id list;
  allowed_set : (Ids.workflow_id, unit) Hashtbl.t;
  hierarchy : Hierarchy.t Lazy.t;
  floors : (Ids.module_id, Privilege.level) Hashtbl.t;
  mutable g_view : View.t option;
}

let make_gen ?classification ?(generation = 0) ?(shards = 1) privilege ~level =
  if generation < 0 then invalid_arg "Access_gate: negative generation";
  if shards < 1 then invalid_arg "Access_gate: shards < 1";
  let g_allowed = Privilege.access_prefix privilege level in
  let allowed_set = Hashtbl.create (List.length g_allowed) in
  List.iter (fun w -> Hashtbl.replace allowed_set w ()) g_allowed;
  let g_spec = Privilege.spec privilege in
  {
    g_spec;
    g_level = level;
    g_generation = generation;
    g_shards = shards;
    privilege;
    classification;
    g_allowed;
    allowed_set;
    hierarchy = lazy (Hierarchy.of_spec g_spec);
    floors = Hashtbl.create 32;
    g_view = None;
  }

let make ?generation ?shards privilege ~level =
  make_gen ?generation ?shards privilege ~level

let of_policy ?generation ?shards policy ~level =
  make_gen
    ~classification:(Policy.data_classification policy)
    ?generation ?shards (Policy.privilege policy) ~level

let unrestricted ?generation ?shards spec =
  make_gen ?generation ?shards (Privilege.public spec) ~level:0

let spec t = t.g_spec
let level t = t.g_level
let generation t = t.g_generation
let shards t = t.g_shards
let allowed t = t.g_allowed
let allows_workflow t w = Hashtbl.mem t.allowed_set w
let workflow_floor t w = Privilege.required_level t.privilege w

let module_floor t m =
  match Hashtbl.find_opt t.floors m with
  | Some l -> l
  | None ->
      let chain = Hierarchy.module_path t.g_spec (Lazy.force t.hierarchy) m in
      let l =
        List.fold_left
          (fun acc w -> max acc (Privilege.required_level t.privilege w))
          0 chain
      in
      Hashtbl.replace t.floors m l;
      l

let sees_module t m = module_floor t m <= t.g_level

let data_readable t name =
  match t.classification with
  | None -> true
  | Some c -> Data_privacy.readable c t.g_level name

let spec_view t =
  match t.g_view with
  | Some v -> v
  | None ->
      let v = View.of_prefix t.g_spec t.g_allowed in
      t.g_view <- Some v;
      v

(* Force every lazily-materialized piece of the gate — hierarchy, spec
   view, the floor of every module — so all later calls are pure reads.
   Required before a gate may be consulted from several domains. *)
let prepare t =
  ignore (Lazy.force t.hierarchy);
  ignore (spec_view t);
  List.iter (fun m -> ignore (module_floor t m)) (Spec.module_ids t.g_spec)

(* Canonical digest of the gate's visibility: level, allowed prefix,
   visible modules and (when classified) the data names hidden at the
   level. Two gates with equal fingerprints answer every visibility
   question identically, so anything keyed by fingerprint — the serving
   layer's result cache — is partitioned exactly like access views are.
   The level is a syntactic prefix of the string: no two levels can ever
   share a key, even on (impossible) digest collisions downstream. *)
let fingerprint t =
  prepare t;
  let visible =
    Spec.module_ids t.g_spec |> List.filter (sees_module t)
    |> List.map string_of_int
  in
  let hidden_data =
    match t.classification with
    | None -> []
    | Some c -> Data_privacy.sensitive_names c t.g_level
  in
  (* The generation keys the epoch the gate was built against: a live
     repository publishes one per committed batch, and results computed
     on one epoch must never answer a request pinned to another. The
     frozen case (generation 0) keeps the historical string, so frozen
     deployments and caches are byte-compatible; the level stays the
     syntactic prefix either way. *)
  let epoch =
    if t.g_generation = 0 then "" else Printf.sprintf "g%d/" t.g_generation
  in
  (* Shard topology partitions caches like the epoch does: a result
     computed against an N-shard layout must not answer for another
     layout (counters, merge bounds and generations are
     topology-relative). Unsharded gates (shards 1) keep the historical
     string byte for byte. *)
  let topology =
    if t.g_shards <= 1 then "" else Printf.sprintf "s%d/" t.g_shards
  in
  Printf.sprintf "l%d/%s%sw{%s}/m{%s}/d{%s}" t.g_level epoch topology
    (String.concat "," t.g_allowed)
    (String.concat "," visible)
    (String.concat "," hidden_data)

let exec_view t exec = Exec_view.of_prefix exec t.g_allowed
let cap_view t v = View.meet v (spec_view t)
let cap_prefix t prefix = List.filter (allows_workflow t) prefix
let offending t prefix = List.filter (fun w -> not (allows_workflow t w)) prefix

let deepest_offender t prefix =
  match offending t prefix with
  | [] -> None
  | first :: rest ->
      let h = Lazy.force t.hierarchy in
      Some
        (List.fold_left
           (fun best w ->
             let dw = Hierarchy.depth h w and db = Hierarchy.depth h best in
             if dw > db || (dw = db && w < best) then w else best)
           first rest)

let collapse t prefix w =
  let drop = Hierarchy.descendants (Lazy.force t.hierarchy) w in
  List.filter (fun x -> not (List.mem x drop)) prefix

(* ------------------------------------------------------------------ *)
(* Observability: the gate is the audit surface, so decision events are
   recorded here — privilege-tagged counters plus one audit record per
   decision. A denial records only the floor that would have been
   required, never what stayed hidden. *)

module Obs = Wfpriv_obs

let m_queries = Obs.Registry.counter "gate.queries"
let m_denials = Obs.Registry.counter "gate.denials"
let m_nodes = Obs.Registry.counter "gate.nodes"
let m_zooms = Obs.Registry.counter "gate.zooms"
let m_views = Obs.Registry.counter "gate.views"

(* Privilege floors (above the gate's level) of everything a query names
   explicitly: [Module_is] predicates on hidden modules, [Inside]
   targets outside the allowed prefix. Ascending, duplicates kept out.
   The evaluator itself needs no gate — it runs on the access view — so
   this is pure observability: it classifies a query that mentions
   hidden structure without changing its (already privacy-safe)
   answer. *)
let denied_floors t q =
  let acc = ref [] in
  let add l = if l > t.g_level && not (List.mem l !acc) then acc := l :: !acc in
  let pred = function
    | Query_ast.Module_is m ->
        if not (sees_module t m) then add (module_floor t m)
    | _ -> ()
  in
  let rec go = function
    | Query_ast.Node p -> pred p
    | Query_ast.Edge (a, b) | Query_ast.Before (a, b)
    | Query_ast.Carries (a, b, _)
    | Query_ast.Refines (a, b) ->
        pred a;
        pred b
    | Query_ast.Inside (p, w) ->
        pred p;
        if not (allows_workflow t w) then add (workflow_floor t w)
    | Query_ast.And (a, b) | Query_ast.Or (a, b) ->
        go a;
        go b
    | Query_ast.Not a -> go a
  in
  go q;
  List.sort compare !acc

let audit_outcome floors =
  match List.rev floors with
  | [] -> Obs.Audit_log.Allowed
  | floor :: _ -> Obs.Audit_log.Denied { floor }

let audit_query t q ~nodes =
  let level = t.g_level in
  Obs.Counter.incr m_queries ~at:level;
  Obs.Counter.add m_nodes ~at:level nodes;
  let floors = denied_floors t q in
  if floors <> [] then Obs.Counter.incr m_denials ~at:level;
  Obs.Audit_log.record ~op:"gate.query" ~level
    ~query:(Query_ast.to_string q) ~nodes (audit_outcome floors)

let audit_zoom t ~op ?floor ~nodes () =
  let level = t.g_level in
  Obs.Counter.incr m_zooms ~at:level;
  let outcome =
    match floor with
    | None -> Obs.Audit_log.Allowed
    | Some floor ->
        Obs.Counter.incr m_denials ~at:level;
        Obs.Audit_log.Denied { floor }
  in
  Obs.Audit_log.record ~op ~level ~nodes outcome

let audit_view t ~op ~nodes =
  Obs.Counter.incr m_views ~at:t.g_level;
  Obs.Audit_log.record ~op ~level:t.g_level ~nodes Obs.Audit_log.Allowed

let module_floors privilege =
  let spec = Privilege.spec privilege in
  let hierarchy = lazy (Hierarchy.of_spec spec) in
  let memo = Hashtbl.create 64 in
  fun m ->
    match Hashtbl.find_opt memo m with
    | Some l -> l
    | None ->
        let chain = Hierarchy.module_path spec (Lazy.force hierarchy) m in
        let l =
          List.fold_left
            (fun acc w -> max acc (Privilege.required_level privilege w))
            0 chain
        in
        Hashtbl.replace memo m l;
        l
