(** Concrete syntax for structural queries — what the CLI and examples
    accept. The grammar mirrors {!Query_ast.to_string} so printing and
    parsing are mutually inverse:

    {v
    query   := or-expr
    or      := and { "or" and }
    and     := unary { "and" unary }
    unary   := "not" unary | primary
    primary := "(" query ")"
             | "node"    "(" pred ")"
             | "edge"    "(" pred "," pred ")"
             | "before"  "(" pred "," pred ")"
             | "carries" "(" pred "," pred "," STRING ")"
             | "inside"  "(" pred "," WORKFLOW ")"
             | "refines" "(" pred "," pred ")"
    pred    := "*" | "atomic" | "composite"
             | "~" STRING          (name/keyword substring)
             | "I" | "O" | "M" n   (a specific module)
    v}

    Example: [before(~"Expand SNP Set", ~"Query OMIM") and not node(~"private")]. *)

exception Syntax_error of { pos : int; message : string }

val parse : string -> Query_ast.t
(** Raises {!Syntax_error} with a character offset on malformed input. *)

val parse_result : string -> (Query_ast.t, string) result
