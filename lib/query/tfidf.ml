module Smap = Map.Make (String)

type corpus = {
  docs : int Smap.t Smap.t; (* doc id -> term -> count *)
  df : int Smap.t; (* term -> #docs containing it *)
  n : int;
}

let normalize = String.lowercase_ascii

let build entries =
  let docs =
    List.fold_left
      (fun acc (doc, terms) ->
        if Smap.mem doc acc then
          invalid_arg (Printf.sprintf "Tfidf.build: duplicate doc %S" doc);
        let counts =
          List.fold_left
            (fun c t ->
              let t = normalize t in
              Smap.add t (1 + Option.value ~default:0 (Smap.find_opt t c)) c)
            Smap.empty terms
        in
        Smap.add doc counts acc)
      Smap.empty entries
  in
  let df =
    Smap.fold
      (fun _ counts acc ->
        Smap.fold
          (fun t _ acc ->
            Smap.add t (1 + Option.value ~default:0 (Smap.find_opt t acc)) acc)
          counts acc)
      docs Smap.empty
  in
  { docs; df; n = Smap.cardinal docs }

let nb_docs c = c.n
let doc_ids c = Smap.fold (fun d _ acc -> d :: acc) c.docs [] |> List.rev

let tf c ~doc term =
  match Smap.find_opt doc c.docs with
  | None -> 0
  | Some counts -> Option.value ~default:0 (Smap.find_opt (normalize term) counts)

(* The one smoothed-IDF formula in the system: the compressed index
   scores with exactly this function (same floats), which is what lets
   its WAND ranking be checked bit-for-bit against corpus scoring. *)
let idf_for ~n ~df = log (float_of_int (1 + n) /. float_of_int (1 + df)) +. 1.0

let idf c term =
  idf_for ~n:c.n
    ~df:(Option.value ~default:0 (Smap.find_opt (normalize term) c.df))

let score c ~doc terms =
  List.fold_left
    (fun acc t -> acc +. (float_of_int (tf c ~doc t) *. idf c t))
    0.0 terms

let scores c terms =
  List.map (fun d -> (d, score c ~doc:d terms)) (doc_ids c)
