(** The pre-engine reference evaluator, kept verbatim as a differential
    baseline.

    This is the list-and-DFS interpreter the query stack used before
    plans: no preparation, no closure memoization, reachability by DFS
    per node pair. It exists so tests can assert the compiled pipeline
    ({!Engine}) returns identical witnesses, and so bench E14 can
    measure what compilation buys. Production callers use
    {!Query_eval}. *)

type witness = { holds : bool; nodes : int list }

val eval_spec : Wfpriv_workflow.View.t -> Query_ast.t -> witness
val eval_exec : Wfpriv_workflow.Exec_view.t -> Query_ast.t -> witness

val spec_nodes_matching :
  Wfpriv_workflow.View.t ->
  Query_ast.node_pred ->
  Wfpriv_workflow.Ids.module_id list

val exec_nodes_matching :
  Wfpriv_workflow.Exec_view.t -> Query_ast.node_pred -> int list

val provenance_of_matches :
  Wfpriv_workflow.Exec_view.t -> Query_ast.node_pred -> int list
