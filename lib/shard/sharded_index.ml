(* Per-shard privacy-partitioned indexes with a leakage-safe global
   top-k merge. Doc sets are disjoint across shards, so global corpus
   statistics are sums of per-shard values; weighting every query once
   from the sums makes each shard's floats the floats of an unsharded
   build over the union (the Live_index discipline, lifted from LSM
   segments to hash shards). *)

open Wfpriv_query
module Pool = Wfpriv_parallel.Pool
module Obs = Wfpriv_obs

let m_topk = Obs.Registry.counter "shard.topk_queries"
let m_scanned = Obs.Registry.counter "shard.topk_scanned"
let m_pruned = Obs.Registry.counter "shard.topk_pruned"

type t = { parts : Index.t array; n : int }

let build ?pool shards_entries =
  if Array.length shards_entries = 0 then
    invalid_arg "Sharded_index.build: no shards";
  let names =
    List.sort String.compare
      (List.concat_map
         (List.map (fun (name, _, _) -> name))
         (Array.to_list shards_entries))
  in
  let rec dup = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Sharded_index.build: duplicate entry %S across \
                             shards" a)
        else dup rest
    | _ -> ()
  in
  dup names;
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let parts =
    Pool.parallel_map ~chunk:1 pool (fun es -> Index.build es) shards_entries
  in
  { parts; n = List.length names }

let shards t = Array.length t.parts
let doc_count t = t.n
let shard_index t i = t.parts.(i)

let df t ~level term =
  Array.fold_left (fun acc ix -> acc + Index.df ix ~level term) 0 t.parts

let idf t ~level term = Tfidf.idf_for ~n:t.n ~df:(df t ~level term)

let weighted_terms t ~level terms =
  List.map
    (fun (term, mult) ->
      (term, float_of_int mult *. Tfidf.idf_for ~n:t.n ~df:(df t ~level term)))
    (Index.query_terms terms)

let merge_ranked a b =
  List.merge
    (fun (x : Ranking.entry) (y : Ranking.entry) ->
      String.compare x.doc y.doc)
    a b

let score_entries t ~level terms =
  let wt = weighted_terms t ~level terms in
  Array.fold_left
    (fun acc ix -> merge_ranked acc (Index.score_entries_weighted ix ~level wt))
    [] t.parts

(* The scatter/gather ranked merge. Shards are visited in ascending
   index order; a shard is pruned exactly when its score upper bound
   (Index.max_score — partition metadata at levels <= l, nothing
   decoded) is strictly below the running k-th candidate score. Strict:
   a doc scoring exactly the bound could still displace the current
   k-th on the ascending-doc tie-break, so ties never prune — the
   frozen index's tie-conservative rule across shards. A global top-k
   doc is always inside its own shard's local top-k (the global order —
   score descending, doc ascending — is a total order every shard
   selects by), so re-ranking the surviving shards' local top-k lists
   through Ranking.top_k reproduces the unsharded answer bit for bit. *)
let top_k t ~level ~k terms =
  Obs.Counter.incr m_topk ~at:level;
  if k <= 0 then []
  else begin
    let wt = weighted_terms t ~level terms in
    let best = ref [] and filled = ref 0 in
    Array.iter
      (fun ix ->
        let kth =
          if !filled < k then None
          else
            match List.rev !best with
            | last :: _ -> Some last.Ranking.score
            | [] -> None
        in
        let ub = Index.max_score ix ~level wt in
        match kth with
        | Some kth when ub < kth -> Obs.Counter.incr m_pruned ~at:level
        | _ ->
            Obs.Counter.incr m_scanned ~at:level;
            let local = Index.top_k_weighted ix ~level ~k wt in
            best := Ranking.top_k k (!best @ local);
            filled := List.length !best)
      t.parts;
    !best
  end
