module Binary = Wfpriv_serial.Binary
module Crc32 = Wfpriv_serial.Crc32
module Shard = Wfpriv_parallel.Shard

type t = { shards : int }

let file_name = "shard-map.bin"
let magic = "WSM1"
let version = 1
let max_shards = 4096

exception Corrupt of { file : string; reason : string }

let make ~shards =
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Shard_map.make: shards must be in [1, %d]" max_shards);
  { shards }

(* 64-bit FNV-1a, truncated to OCaml's 63-bit int by the final [land].
   Stable across processes and architectures (pure byte arithmetic), so
   the manifest's routing never depends on [Hashtbl.hash] internals. *)
let fnv1a s =
  let offset_basis = (0xcbf29ce4 lsl 32) lor 0x84222325 in
  let prime = 0x100000001b3 in
  let h = ref offset_basis in
  String.iter (fun c -> h := (!h lxor Char.code c) * prime) s;
  !h land max_int

let route t name = Shard.bucket ~shards:t.shards (fnv1a name)
let shard_dir root i = Filename.concat root (Printf.sprintf "shard-%04d" i)

(* Frame: magic(4) | u8 version | u32 shards | u32 crc32(prefix). *)
let encode t =
  let w = Binary.Writer.create () in
  Binary.Writer.raw w magic;
  Binary.Writer.u8 w version;
  Binary.Writer.u32 w t.shards;
  let body = Binary.Writer.contents w in
  Binary.Writer.u32 w (Crc32.digest body);
  Binary.Writer.contents w

let decode ?(file = file_name) s =
  let fail reason = raise (Corrupt { file; reason }) in
  if String.length s <> 13 then
    fail (Printf.sprintf "manifest is %d bytes, want 13" (String.length s));
  if String.sub s 0 4 <> magic then fail "bad magic";
  let crc_stored = (Binary.Reader.of_string ~pos:9 s |> Binary.Reader.u32) in
  let crc_actual = Crc32.digest ~pos:0 ~len:9 s in
  if crc_stored <> crc_actual then
    fail (Printf.sprintf "crc mismatch: stored %08x, computed %08x" crc_stored
            crc_actual);
  let r = Binary.Reader.of_string ~pos:4 s in
  let v = Binary.Reader.u8 r in
  if v <> version then fail (Printf.sprintf "unknown version %d" v);
  let shards = Binary.Reader.u32 r in
  if shards < 1 || shards > max_shards then
    fail (Printf.sprintf "implausible shard count %d" shards);
  { shards }

let manifest_path dir = Filename.concat dir file_name

let save ~dir t =
  let path = manifest_path dir in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (encode t);
     flush oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     raise e);
  Sys.rename tmp path

let load ~dir =
  let path = manifest_path dir in
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  decode ~file:path s

let present dir = Sys.file_exists (manifest_path dir)
