module Pool = Wfpriv_parallel.Pool
module Durable_repo = Wfpriv_durable.Durable_repo
module Repository = Wfpriv_query.Repository
module Obs = Wfpriv_obs

let m_appends = Obs.Registry.counter "shard.repo_appends"
let m_batches = Obs.Registry.counter "shard.repo_batches"
let m_opens = Obs.Registry.counter "shard.repo_opens"

type t = {
  map : Shard_map.t;
  root : string;
  stores : Durable_repo.t array;
  mutable merged : Repository.t option;
}

let init ?segment_bytes ~shards root =
  let map = Shard_map.make ~shards in
  if Shard_map.present root then
    invalid_arg
      (Printf.sprintf "Sharded_repo.init: %s already holds a sharded store"
         root);
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let stores =
    Array.init shards (fun i ->
        Durable_repo.init ?segment_bytes (Shard_map.shard_dir root i))
  in
  Shard_map.save ~dir:root map;
  { map; root; stores; merged = None }

let open_dir ?pool ?segment_bytes root =
  let map = Shard_map.load ~dir:root in
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let stores =
    Pool.parallel_map ~chunk:1 pool
      (fun i -> Durable_repo.open_dir ?segment_bytes (Shard_map.shard_dir root i))
      (Array.init map.Shard_map.shards Fun.id)
  in
  Obs.Counter.incr_op m_opens;
  { map; root; stores; merged = None }

let is_sharded = Shard_map.present
let shards t = t.map.Shard_map.shards
let dir t = t.root
let shard_map t = t.map
let route t name = Shard_map.route t.map name
let shard_store t i = t.stores.(i)

let mutation_entry = function
  | Repository.Add_entry { entry_name; _ } -> entry_name
  | Repository.Add_execution { entry_name; _ } -> entry_name
  | Repository.Erase { entry_name; _ } -> entry_name

let append t mutation =
  let s = route t (mutation_entry mutation) in
  let lsn = Durable_repo.append t.stores.(s) mutation in
  t.merged <- None;
  Obs.Counter.incr_op m_appends;
  (s, lsn)

(* Erasure routes like any mutation; the owning shard runs the full
   durable rewrite (commit + checkpoint + compact + prune), and sibling
   shards — which never held the erased bytes — are untouched. *)
let erase t mutation =
  let s = route t (mutation_entry mutation) in
  let report = Durable_repo.erase t.stores.(s) mutation in
  t.merged <- None;
  (s, report)

let generation t =
  Array.fold_left (fun acc st -> acc + Durable_repo.generation st) 0 t.stores

let append_streaming t batch =
  if batch = [] then invalid_arg "Sharded_repo.append_streaming: empty batch";
  let groups = Array.make (shards t) [] in
  List.iter
    (fun m ->
      let s = route t (mutation_entry m) in
      groups.(s) <- m :: groups.(s))
    batch;
  (* Validate every group before journaling any: a doomed group must
     not leave sibling shards already committed. Per-shard validation
     is exact because a batch's dependencies are same-name, hence
     same-group. *)
  Array.iteri
    (fun s group ->
      match group with
      | [] -> ()
      | _ ->
          let scratch = Repository.freeze (Durable_repo.repo t.stores.(s)) in
          List.iter (Repository.apply scratch) (List.rev group))
    groups;
  Array.iteri
    (fun s group ->
      match group with
      | [] -> ()
      | _ -> ignore (Durable_repo.append_streaming t.stores.(s) (List.rev group)))
    groups;
  t.merged <- None;
  Obs.Counter.incr_op m_batches;
  generation t

let merged_repo t =
  let entries =
    Array.fold_left
      (fun acc st ->
        let r = Durable_repo.repo st in
        List.fold_left (fun acc n -> Repository.find r n :: acc) acc
          (Repository.names r))
      [] t.stores
  in
  let entries =
    List.sort
      (fun (a : Repository.entry) b -> String.compare a.name b.name)
      entries
  in
  let r = Repository.create () in
  List.iter
    (fun (e : Repository.entry) ->
      Repository.add r ~name:e.name ~policy:e.policy ~executions:e.executions
        ())
    entries;
  r

let repo t =
  match t.merged with
  | Some r -> r
  | None ->
      let r = merged_repo t in
      t.merged <- Some r;
      r

let entries_by_shard t =
  Array.map (fun st -> Repository.index_entries (Durable_repo.repo st)) t.stores

let index ?pool t = Sharded_index.build ?pool (entries_by_shard t)

let checkpoint t =
  Array.to_list (Array.map Durable_repo.checkpoint t.stores)

let compact t =
  Array.fold_left (fun acc st -> acc + Durable_repo.compact st) 0 t.stores

let prune_snapshots t =
  Array.fold_left (fun acc st -> acc + Durable_repo.prune_snapshots st) 0 t.stores

let close t = Array.iter Durable_repo.close t.stores

let status root =
  let map = Shard_map.load ~dir:root in
  let sts =
    List.init map.Shard_map.shards (fun i ->
        (i, Durable_repo.status (Shard_map.shard_dir root i)))
  in
  (map, sts)
