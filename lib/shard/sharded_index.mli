(** Per-shard keyword indexes with a leakage-safe global top-k merge:
    the distributed-style query planner's ranked half.

    Entries are partitioned across shards by name (disjoint doc sets),
    each shard holding its own privacy-partitioned compressed index
    ({!Wfpriv_query.Index}). Global corpus statistics are sums of
    per-shard values — a doc lives in exactly one shard, so global
    document frequency and document count add up exactly — and term
    weights are computed once from those sums (the
    {!Wfpriv_query.Live_index} discipline), making every per-shard score
    the float the unsharded index would assign the same doc.

    {!top_k} then visits shards in ascending index order, running
    per-shard block-max WAND with the shared global weights, and prunes
    a whole shard exactly when its score upper bound
    ({!Wfpriv_query.Index.max_score} — partition metadata at levels
    [<= l] only, nothing decoded) is {e strictly} below the current
    k-th candidate score: a tie at the bound could still win on the
    ascending-doc tie-break, so ties never prune (the frozen index's
    tie-conservative rule, lifted across shards). The surviving
    candidates re-rank through {!Wfpriv_query.Ranking.top_k}, giving a
    result bit-identical — float-identical scores, identical ordering —
    to the unsharded index over the union of entries.

    Leakage: weights, bounds and pruning decisions are functions of
    partitions at levels [<= l] plus public doc counts, so the
    observer-visible decode/skip/prune counters of a level-[l] caller
    are a pure function of what that caller may see — hidden postings
    cannot surface through work counts (the sharded leakage suite pins
    this). *)

type t

val build :
  ?pool:Wfpriv_parallel.Pool.t ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list array ->
  t
(** One entry list per shard ([Index.build]'s triples); shard indexes
    build in parallel on the pool. Raises [Invalid_argument] on an empty
    shard array or duplicate entry names across shards. *)

val shards : t -> int
val doc_count : t -> int
(** Global (summed) document count. *)

val shard_index : t -> int -> Wfpriv_query.Index.t
(** The shard's own index (e.g. for per-shard stats). *)

val df : t -> level:Wfpriv_privacy.Privilege.level -> string -> int
(** Global document frequency: the sum of per-shard dfs — exactly the
    unsharded df, because doc sets are disjoint. *)

val idf : t -> level:Wfpriv_privacy.Privilege.level -> string -> float

val weighted_terms :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string list ->
  (string * float) list
(** Query terms in first-occurrence order with global weights
    (multiplicity times global IDF) — bit-identical to the unsharded
    {!Wfpriv_query.Index}'s weights. *)

val top_k :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  k:int ->
  string list ->
  Wfpriv_query.Ranking.entry list
(** The global top-[k]: per-shard WAND + upper-bound pruning + global
    re-rank, bit-identical to [Index.top_k] over the union of entries. *)

val score_entries :
  t ->
  level:Wfpriv_privacy.Privilege.level ->
  string list ->
  Wfpriv_query.Ranking.entry list
(** Exhaustive scoring across all shards, merged ascending by doc name —
    the differential reference for {!top_k} (same floats, doc order
    equal to the unsharded [score_entries]). *)
