(** A hash-partitioned durable repository: N independent
    {!Wfpriv_durable.Durable_repo} stores under one root, plus a CRC'd
    shard-map manifest ({!Shard_map}) that makes the partitioning
    self-describing on disk.

    Every mutation names its entry, and entries route by
    {!Shard_map.route} (FNV-1a of the entry name through
    {!Wfpriv_parallel.Shard.bucket}) — so an entry's whole history
    (its [Add_entry] and every later [Add_execution]) lives in exactly
    one shard, appends touch one WAL, and recovery replays shards
    independently (in parallel across the pool's domains). The merged
    in-memory repository re-inserts entries in sorted-name order;
    since every read API is insertion-order independent, queries
    against it are bit-identical to an unsharded store fed the same
    mutations. *)

type t

val init : ?segment_bytes:int -> shards:int -> string -> t
(** Create a fresh sharded store under the root: the manifest plus
    [shards] empty {!Wfpriv_durable.Durable_repo} stores in
    [shard-0000 ..]. Raises [Invalid_argument] if the root already
    holds a manifest, or as {!Shard_map.make} on a bad shard count. *)

val open_dir :
  ?pool:Wfpriv_parallel.Pool.t -> ?segment_bytes:int -> string -> t
(** Recover every shard (parallel across the pool's domains — shards
    are independent directories) and open for appending. Raises
    {!Shard_map.Corrupt} on a damaged manifest, else as
    {!Wfpriv_durable.Recovery.open_dir} naming the broken shard. *)

val is_sharded : string -> bool
(** Whether the directory holds a shard-map manifest — how the CLI
    and server pick the sharded or plain open path. *)

val shards : t -> int
val dir : t -> string
val shard_map : t -> Shard_map.t

val route : t -> string -> int
(** The shard an entry name lives in. *)

val shard_store : t -> int -> Wfpriv_durable.Durable_repo.t

val append : t -> Wfpriv_query.Repository.mutation -> int * int
(** Route by the mutation's entry name, append to that shard's WAL;
    returns [(shard, lsn)]. Raises as
    {!Wfpriv_durable.Durable_repo.append}. *)

val erase :
  t ->
  Wfpriv_query.Repository.mutation ->
  int * Wfpriv_durable.Durable_repo.erase_report
(** Route an [Erase] to its entry's shard and run the full
    {!Wfpriv_durable.Durable_repo.erase} history rewrite there; returns
    [(shard, report)]. Other shards never held the erased bytes and are
    untouched. Raises as the underlying erase. *)

val append_streaming : t -> Wfpriv_query.Repository.mutation list -> int
(** Partition the batch by entry shard (within-shard order preserved —
    and every dependency in a batch is same-name, hence same-shard),
    stream each non-empty group as one generation commit, and return
    the new global {!generation}. Atomicity is {e per shard}: a crash
    mid-call can leave some shards on the new epoch and others on the
    old, each individually consistent — the recovery fuzz exercises
    exactly this. Raises [Invalid_argument] on an empty batch. *)

val generation : t -> int
(** Global epoch: the sum of per-shard generations. Monotonic (any
    committed batch strictly raises it), and together with the shard
    count it fingerprints the sharded corpus for result caches — it is
    {e not} the batch count an unsharded store would report. *)

val repo : t -> Wfpriv_query.Repository.t
(** The merged repository: every shard's entries, re-inserted in
    sorted-name order into one fresh repository. Cached; invalidated
    by {!append} / {!append_streaming}. Treat as read-only. *)

val entries_by_shard :
  t ->
  (string * Wfpriv_workflow.Spec.t * Wfpriv_privacy.Privilege.t) list array
(** Per shard, the index triples of that shard's own repository — what
    {!index} builds from, exposed for differential tests. *)

val index : ?pool:Wfpriv_parallel.Pool.t -> t -> Sharded_index.t
(** The sharded keyword index over the current entries (per-shard
    builds in parallel). Not cached — pair with {!generation} to know
    when to rebuild. *)

val checkpoint : t -> int list
(** Checkpoint every shard; per-shard snapshot lsns in shard order. *)

val compact : t -> int
(** Compact every shard; total segments deleted. *)

val prune_snapshots : t -> int
(** Prune every shard's old snapshots; total deleted. *)

val close : t -> unit

val status : string -> Shard_map.t * (int * Wfpriv_durable.Durable_repo.status) list
(** Read-only: the manifest plus each shard's
    {!Wfpriv_durable.Durable_repo.status} (full recovery pass per
    shard), in shard order. *)
