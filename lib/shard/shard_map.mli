(** The shard-map manifest of a sharded store directory: how many shards
    the store was created with, and the deterministic partition key that
    routes an entry name to its shard.

    The manifest is the root of trust for a sharded store — opening a
    store with the wrong shard count would route reads to the wrong
    shard silently — so it carries its own CRC'd codec, mirroring the
    WAL frame discipline: magic, version, payload, CRC-32 of everything
    before it. Writes are atomic (temp file + rename), so a crash during
    [init] leaves either no manifest (no store) or a complete one.

    Routing is by FNV-1a over the entry name folded through
    {!Wfpriv_parallel.Shard.bucket} — a function of the name bytes and
    the shard count only, so any process that can read the manifest
    computes the same placement forever (the on-disk partition-key
    contract; the MPI schema's partition-key discipline is the model). *)

type t = { shards : int }

val file_name : string
(** ["shard-map.bin"], in the sharded store's root directory. *)

exception Corrupt of { file : string; reason : string }

val make : shards:int -> t
(** Raises [Invalid_argument] unless [1 <= shards <= 4096]. *)

val fnv1a : string -> int
(** 64-bit FNV-1a of the bytes, truncated to OCaml's int — the stable
    hash under {!route}. Exposed so tests can pin vectors. *)

val route : t -> string -> int
(** Shard index of an entry name:
    [Shard.bucket ~shards (fnv1a name)]. *)

val shard_dir : string -> int -> string
(** [shard_dir root i] is the per-shard store directory
    [root/shard-NNNN]. *)

val save : dir:string -> t -> unit
(** Write the manifest atomically into [dir] (which must exist). *)

val load : dir:string -> t
(** Raises {!Corrupt} on a bad magic, version, CRC or length; raises
    [Sys_error] when the manifest does not exist. *)

val present : string -> bool
(** Whether [dir] holds a manifest — the "is this store sharded?"
    probe the CLI and server use. *)

val encode : t -> string
val decode : ?file:string -> string -> t
(** Raises {!Corrupt}; [file] labels the error. *)
