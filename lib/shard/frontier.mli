(** Scatter/gather reachability over a node-partitioned DAG: the
    distributed-style query planner's structural half.

    A prepared frontier hash-partitions the graph's nodes across
    [shards] logical shards (deterministic partition key: a fixed
    integer mix of the external node id through
    {!Wfpriv_parallel.Shard.bucket}). Each shard owns its nodes, the
    edges between them ({e local} edges), and a per-shard bitset closure
    of the local subgraph — rows of [n_s] bits instead of the unsharded
    engine's [n], so closure memory and build work drop by roughly the
    shard count and its square respectively. Edges that cross shard
    boundaries are kept as per-node outboxes.

    Reachability from a source runs an iterative cross-shard frontier
    exchange: each round, every shard with a pending frontier unions the
    local-closure rows of its frontier nodes (one bitset sweep — the
    within-shard jump), then forwards the cross-edges of the newly
    reached nodes to their owning shards; the exchange converges when no
    shard has pending work. Per-source results are memoized, so
    [Reach_join]-style plans touch each source once. Answers are exactly
    transitive reachability — the differential suite pins them
    bit-identical to the unsharded {!Wfpriv_query.Engine} closure.

    Shared-nothing by construction: shards own disjoint node sets, rows
    are unioned in ascending shard order, and pending frontiers drain in
    ascending slot order, so answers and the observer-visible round/
    exchange counters are independent of the pool's scheduling.

    A prepared frontier is immutable except for the per-source memo,
    which is unsynchronized: share one frontier across domains only
    read-after-memoization (the engine's batched evaluation runs
    override-carrying engines sequentially, which is the intended
    pairing). *)

type t

val prepare :
  ?pool:Wfpriv_parallel.Pool.t ->
  shards:int ->
  succ:(int -> int list) ->
  int list ->
  t
(** [prepare ~shards ~succ nodes] partitions the graph and builds every
    shard's local closure (rows filled shard-parallel on the pool,
    reverse-topological with a DFS fallback on cycles — the unsharded
    engine's row discipline at local scale). [nodes] are external ids;
    [succ] lists a node's successors. Raises [Invalid_argument] if
    [shards < 1]. *)

val of_engine : ?pool:Wfpriv_parallel.Pool.t -> shards:int -> Wfpriv_query.Engine.t -> t
(** Partition a prepared engine's graph ({!Wfpriv_query.Engine.nodes} /
    [succ]) without touching its closure. *)

val engine_of_exec_view :
  ?pool:Wfpriv_parallel.Pool.t ->
  shards:int ->
  Wfpriv_workflow.Exec_view.t ->
  Wfpriv_query.Engine.t
(** The sharded structural planner entry point: an engine over the view
    whose reachability oracle is a prepared frontier at [shards].
    [shards = 1] returns the plain engine — one shard {e is} the
    unsharded single-memo path, bit-identical by definition. Plans
    compiled by {!Wfpriv_query.Plan} run unchanged; only reachability is
    answered by frontier exchange. *)

val shards : t -> int
val nb_nodes : t -> int

val owner : t -> int -> int
(** Owning shard of an external node id; raises [Not_found] on unknown
    ids. *)

val reaches : t -> int -> int -> bool
(** Reflexive-transitive reachability over the full graph; [false] when
    either id is unknown (the engine-closure convention). *)

val reachable_set : t -> int -> int list
(** External ids reachable from the node (itself included), ascending;
    [[]] for unknown nodes. *)

val rounds : t -> int
(** Cumulative frontier-exchange rounds across all queries — a function
    of the prepared (access-view-capped) graph and the queried sources
    only, so exposing it leaks nothing beyond the view itself. *)

val exchanges : t -> int
(** Cumulative cross-shard frontier deliveries, same visibility
    argument. *)

val closure_bytes : t -> int
(** Total bytes of all per-shard closure rows — the memory the sharding
    saves versus one [n x n] memo (which costs [shards] times more). *)
