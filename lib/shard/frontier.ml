module Bitset = Wfpriv_graph.Bitset
module Pool = Wfpriv_parallel.Pool
module Shard = Wfpriv_parallel.Shard
module Engine = Wfpriv_query.Engine
module Obs = Wfpriv_obs

let m_prepares = Obs.Registry.counter "shard.frontier_prepares"
let m_queries = Obs.Registry.counter "shard.frontier_queries"
let m_rounds = Obs.Registry.counter "shard.frontier_rounds"
let m_exchanges = Obs.Registry.counter "shard.frontier_exchanges"

type t = {
  shards : int;
  node_of : int array; (* dense -> external, ascending *)
  index_of : (int, int) Hashtbl.t; (* external -> dense *)
  owner : int array; (* dense -> shard *)
  slot : int array; (* dense -> local index within its shard *)
  own : int array array; (* shard -> local index -> dense *)
  cross : int array array array;
      (* shard -> local index -> the node's outbox of boundary edges,
         each packed as [(dest shard lsl 32) lor dest slot], ascending —
         packed ints keep the hot delivery loop scanning one flat array
         per node instead of chasing a tuple list *)
  closures : Bitset.t array array; (* shard -> local closure rows *)
  memo : (int, Bitset.t array) Hashtbl.t; (* dense src -> per-shard reached *)
  mutable rounds : int;
  mutable exchanges : int;
}

(* Deterministic partition key for graph nodes: a fixed avalanche mix of
   the external id (splitmix64's finalizer constants, truncated to
   OCaml's native int by the 32-bit compositions below), folded through
   the documented routing function. Pure integer arithmetic — stable
   across processes, unlike [Hashtbl.hash] no versioning caveats. *)
let mix_a = (0x9e3779b9 lsl 32) lor 0x7f4a7c15
let mix_b = (0xbf58476d lsl 32) lor 0x1ce4e5b9
let mix_c = (0x94d049bb lsl 32) lor 0x133111eb

let node_key u =
  let h = u * mix_a in
  let h = (h lxor (h lsr 30)) * mix_b in
  (h lxor (h lsr 27)) * mix_c

let mask32 = (1 lsl 32) - 1
let pack ds dslot = (ds lsl 32) lor dslot

(* In-place ascending sort + dedup; packed (shard, slot) ints order
   exactly as the (shard, slot) pairs do lexicographically. *)
let sort_uniq_ints a =
  Array.sort (fun (x : int) y -> compare x y) a;
  let m = Array.length a in
  if m <= 1 then a
  else begin
    let w = ref 1 in
    for r = 1 to m - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = m then a else Array.sub a 0 !w
  end

(* Fill one shard's local closure rows: reverse-topological (Kahn over
   the local subgraph), each row unioning its local successors' complete
   rows; per-row DFS fallback if the local subgraph ever carries a cycle
   (it cannot for DAG inputs, but the engine keeps the same guard). *)
let local_closure local_succ =
  let k = Array.length local_succ in
  let rows = Array.init k (fun _ -> Bitset.create k) in
  let indeg = Array.make k 0 in
  Array.iter (Array.iter (fun j -> indeg.(j) <- indeg.(j) + 1)) local_succ;
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) indeg;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    incr seen;
    order := i :: !order;
    Array.iter
      (fun j ->
        indeg.(j) <- indeg.(j) - 1;
        if indeg.(j) = 0 then Queue.add j queue)
      local_succ.(i)
  done;
  if !seen = k then
    List.iter
      (fun i ->
        Bitset.add rows.(i) i;
        Array.iter
          (fun j -> Bitset.union_into ~dst:rows.(i) rows.(j))
          local_succ.(i))
      !order
  else
    for i = 0 to k - 1 do
      let stack = ref [ i ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            if not (Bitset.mem rows.(i) u) then begin
              Bitset.add rows.(i) u;
              Array.iter (fun v -> stack := v :: !stack) local_succ.(u)
            end
      done
    done;
  rows

(* Core build over a dense adjacency: [node_of.(i)] external ids,
   [dense_succ.(i)] successors as dense indices. Both the list-based
   [prepare] and the engine-backed [of_engine] funnel here, so every
   entry point yields the same owners, slots and closures. [sorted]
   promises the successor arrays are ascending and duplicate-free (the
   engine's invariant), letting the partition skip its sorts; layout
   order is not observable — pendings are sets and the delivery guard
   reads only state frozen during a sweep — so both paths answer and
   count identically. *)
let prepare_dense ?pool ~shards ~sorted ~node_of ~index_of ~dense_succ () =
  if shards < 1 then invalid_arg "Frontier.prepare: shards < 1";
  let pool = match pool with Some p -> p | None -> Pool.global () in
  let n = Array.length node_of in
  let owner =
    Array.map (fun u -> Shard.bucket ~shards (node_key u)) node_of
  in
  let sizes = Array.make shards 0 in
  let slot = Array.make (max n 1) 0 in
  Array.iteri
    (fun i s ->
      slot.(i) <- sizes.(s);
      sizes.(s) <- sizes.(s) + 1)
    owner;
  let own = Array.init shards (fun s -> Array.make (max sizes.(s) 1) 0) in
  Array.iteri (fun i s -> own.(s).(slot.(i)) <- i) owner;
  let own = Array.init shards (fun s -> Array.sub own.(s) 0 sizes.(s)) in
  (* Split each node's successor list into local edges (same shard, in
     local coordinates) and the cross-shard outbox. *)
  let local_succ =
    Array.init shards (fun s -> Array.make (max sizes.(s) 1) [||])
  in
  let cross = Array.init shards (fun s -> Array.make (max sizes.(s) 1) [||]) in
  (* Two passes per node — count, then fill exact-size arrays — so the
     partition allocates nothing per edge. *)
  for i = 0 to n - 1 do
    let s = owner.(i) in
    let js = dense_succ.(i) in
    let nl = ref 0 in
    Array.iter (fun j -> if owner.(j) = s then incr nl) js;
    let locals = Array.make !nl 0 in
    let aways = Array.make (Array.length js - !nl) 0 in
    let wl = ref 0 and wa = ref 0 in
    Array.iter
      (fun j ->
        if owner.(j) = s then begin
          locals.(!wl) <- slot.(j);
          incr wl
        end
        else begin
          aways.(!wa) <- pack owner.(j) slot.(j);
          incr wa
        end)
      js;
    (* Ascending input gives ascending local slots (slot order follows
       dense order within a shard), so sorted inputs need no re-sort. *)
    local_succ.(s).(slot.(i)) <- (if sorted then locals else sort_uniq_ints locals);
    cross.(s).(slot.(i)) <- (if sorted then aways else sort_uniq_ints aways)
  done;
  let local_succ =
    Array.init shards (fun s -> Array.sub local_succ.(s) 0 sizes.(s))
  in
  let cross = Array.init shards (fun s -> Array.sub cross.(s) 0 sizes.(s)) in
  (* Per-shard closures fill in parallel: shards own disjoint rows and
     read only their own local subgraph, so the fan-out is free of
     sharing and the rows are identical to a sequential build's. *)
  let closures = Pool.parallel_map ~chunk:1 pool local_closure local_succ in
  Obs.Counter.incr_op m_prepares;
  {
    shards;
    node_of;
    index_of;
    owner;
    slot;
    own;
    cross;
    closures;
    memo = Hashtbl.create 64;
    rounds = 0;
    exchanges = 0;
  }

let prepare ?pool ~shards ~succ nodes =
  if shards < 1 then invalid_arg "Frontier.prepare: shards < 1";
  let node_of = Array.of_list nodes in
  let n = Array.length node_of in
  let index_of = Hashtbl.create (max n 1) in
  Array.iteri (fun i u -> Hashtbl.replace index_of u i) node_of;
  let dense_succ =
    Array.map
      (fun u ->
        succ u
        |> List.map (fun v ->
               match Hashtbl.find_opt index_of v with
               | Some j -> j
               | None -> invalid_arg "Frontier.prepare: edge endpoint unknown")
        |> Array.of_list)
      node_of
  in
  prepare_dense ?pool ~shards ~sorted:false ~node_of ~index_of ~dense_succ ()

let of_engine ?pool ~shards eng =
  (* Reuse the engine's prepared dense adjacency: no per-edge Hashtbl
     translation, no per-node successor lists. The arrays are shared
     read-only; the partition never mutates them. *)
  let node_of, dense_succ = Engine.dense_graph eng in
  let n = Array.length node_of in
  let index_of = Hashtbl.create (max n 1) in
  Array.iteri (fun i u -> Hashtbl.replace index_of u i) node_of;
  prepare_dense ?pool ~shards ~sorted:true ~node_of ~index_of ~dense_succ ()

let shards t = t.shards
let nb_nodes t = Array.length t.node_of

let owner t u =
  match Hashtbl.find_opt t.index_of u with
  | Some i -> t.owner.(i)
  | None -> raise Not_found

(* One source's reachable set, as per-shard bitsets over local slots.
   The frontier exchange: pending.(s) holds slots whose closure rows the
   next sweep over shard [s] must union in; a sweep marks everything
   newly reached and forwards the new nodes' outboxes. Pendings are
   bitsets, so a delivery is one bit-set (idempotent — a slot delivered
   from several shards unions once) and a sweep visits each pending slot
   once, in ascending slot order. Shards are swept in ascending index,
   so the iteration count and delivery count are deterministic. *)
let compute t src_dense =
  let reached =
    Array.map (fun o -> Bitset.create (Array.length o)) t.own
  in
  let pending =
    Array.map (fun o -> Bitset.create (Array.length o)) t.own
  in
  let any_pending = ref true in
  let s0 = t.owner.(src_dense) in
  Bitset.add pending.(s0) t.slot.(src_dense);
  Obs.Counter.incr_op m_queries;
  while !any_pending do
    any_pending := false;
    t.rounds <- t.rounds + 1;
    Obs.Counter.incr_op m_rounds;
    for s = 0 to t.shards - 1 do
      if not (Bitset.is_empty pending.(s)) then begin
        let ps = pending.(s) in
        let k = Array.length t.own.(s) in
        let acc = Bitset.create k in
        Bitset.iter
          (fun p ->
            if not (Bitset.mem reached.(s) p) then
              Bitset.union_into ~dst:acc t.closures.(s).(p))
          ps;
        (* Cross edges never stay in-shard, so no delivery below lands
           back in [ps]: safe to clear before forwarding outboxes. *)
        Bitset.clear ps;
        (* Newly reached = acc minus what this shard already had. *)
        Bitset.diff_into ~dst:acc reached.(s);
        if not (Bitset.is_empty acc) then begin
          Bitset.union_into ~dst:reached.(s) acc;
          (* Deliveries tally locally and post once per sweep: the
             registry add is atomic, and one per delivery would dominate
             the exchange on dense graphs. *)
          let delivered = ref 0 in
          Bitset.iter
            (fun p ->
              Array.iter
                (fun packed ->
                  let ds = packed lsr 32 and dslot = packed land mask32 in
                  if not (Bitset.mem reached.(ds) dslot) then begin
                    Bitset.add pending.(ds) dslot;
                    incr delivered
                  end)
                t.cross.(s).(p))
            acc;
          t.exchanges <- t.exchanges + !delivered;
          Obs.Counter.add_op m_exchanges !delivered
        end
      end
    done;
    (* Deliveries to a shard index above the sweep position were already
       consumed this round; anything still pending waits for the next. *)
    any_pending := Array.exists (fun b -> not (Bitset.is_empty b)) pending
  done;
  reached

let reached_for t src_dense =
  match Hashtbl.find_opt t.memo src_dense with
  | Some r -> r
  | None ->
      let r = compute t src_dense in
      Hashtbl.replace t.memo src_dense r;
      r

let reaches t u v =
  match (Hashtbl.find_opt t.index_of u, Hashtbl.find_opt t.index_of v) with
  | Some i, Some j ->
      let r = reached_for t i in
      Bitset.mem r.(t.owner.(j)) t.slot.(j)
  | _ -> false

let reachable_set t u =
  match Hashtbl.find_opt t.index_of u with
  | None -> []
  | Some i ->
      let r = reached_for t i in
      let acc = ref [] in
      Array.iteri
        (fun s bs ->
          Bitset.iter (fun p -> acc := t.node_of.(t.own.(s).(p)) :: !acc) bs)
        r;
      List.sort compare !acc

let rounds t = t.rounds
let exchanges t = t.exchanges

let closure_bytes t =
  Array.fold_left
    (fun acc rows ->
      let k = Array.length rows in
      let words = (k + 62) / 63 in
      acc + (k * words * 8))
    0 t.closures

let engine_of_exec_view ?pool ~shards ev =
  if shards <= 1 then Engine.of_exec_view ev
  else begin
    (* One preparation, not two: the engine is prepared once, the
       frontier partitions its dense adjacency in place, and the
       returned view shares the prepared graph with the frontier's
       reachability oracle spliced in. *)
    let eng = Engine.of_exec_view ev in
    let f = of_engine ?pool ~shards eng in
    Engine.with_reaches eng (reaches f)
  end
